// nblint's whole-program stage: call-site extraction and resolution
// (callgraph.h), effect summaries and their transitive closure
// (summary.h), the four taint.h rule families, the incremental cache
// (cache.h), and the warn-finding baseline (lint.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/cache.h"
#include "lint/callgraph.h"
#include "lint/lint.h"
#include "lint/model.h"
#include "lint/summary.h"
#include "lint/taint.h"

namespace noisybeeps::lint {
namespace {

SourceFile Src(std::string path, std::string body) {
  return SourceFile{std::move(path), std::move(body)};
}

// Call sites of the definition named `name` in `path`.
std::vector<RawCallSite> SitesOf(const RepoModel& repo,
                                 const std::string& path,
                                 const std::string& name) {
  const FileModel* file = repo.FindFile(path);
  EXPECT_NE(file, nullptr) << path;
  if (file == nullptr) return {};
  for (const FunctionInfo& fn : file->functions()) {
    if (fn.name == name && fn.is_definition) {
      return ExtractCallSites(repo, *file, fn);
    }
  }
  ADD_FAILURE() << "no definition of " << name << " in " << path;
  return {};
}

const RawCallSite* SiteNamed(const std::vector<RawCallSite>& sites,
                             const std::string& callee) {
  for (const RawCallSite& site : sites) {
    if (site.callee == callee) return &site;
  }
  return nullptr;
}

const CallEdge* EdgeNamed(const CallNode& node, const std::string& callee) {
  for (const CallEdge& edge : node.edges) {
    if (edge.site.callee == callee) return &edge;
  }
  return nullptr;
}

std::size_t CountRule(const std::vector<Finding>& findings,
                      const std::string& rule_id) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [&](const Finding& f) {
        return f.rule_id == rule_id;
      }));
}

// --- call-site extraction ---------------------------------------------------

TEST(CallSites, ClassifiesFreeQualifiedAndMemberCalls) {
  const RepoModel repo({Src("src/util/a.cc",
                            "int Helper(int x) { return x; }\n"
                            "int Use() {\n"
                            "  Rng rng(7);\n"
                            "  int a = Helper(1);\n"
                            "  int b = Foo::Make(2);\n"
                            "  double d = rng.NextDouble();\n"
                            "  return a + b + static_cast<int>(d);\n"
                            "}\n")});
  const auto sites = SitesOf(repo, "src/util/a.cc", "Use");

  const RawCallSite* helper = SiteNamed(sites, "Helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->kind, CallKind::kFree);
  EXPECT_EQ(helper->qualifier, "");
  EXPECT_EQ(helper->line, 4);

  const RawCallSite* make = SiteNamed(sites, "Make");
  ASSERT_NE(make, nullptr);
  EXPECT_EQ(make->kind, CallKind::kQualified);
  EXPECT_EQ(make->qualifier, "Foo");

  const RawCallSite* next = SiteNamed(sites, "NextDouble");
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->kind, CallKind::kMember);
  EXPECT_EQ(next->receiver_type, "Rng") << "via the value-type map";
}

TEST(CallSites, DeclarationsAndControlFlowAreNotCalls) {
  const RepoModel repo(
      {Src("src/util/a.cc",
           "void Use() {\n"
           "  int value(3);\n"
           "  std::vector<int> items(4);\n"
           "  if (value) { while (value) { --value; } }\n"
           "  for (int i = 0; i < 3; ++i) { items.resize(i); }\n"
           "}\n")});
  const auto sites = SitesOf(repo, "src/util/a.cc", "Use");
  // `Type name(` declares, if/while/for are control flow; the only real
  // call is the member mutator.
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].callee, "resize");
  EXPECT_EQ(sites[0].kind, CallKind::kMember);
}

TEST(CallSites, ReturnedCallsAreNotVetoedAsDeclarations) {
  // `return Frob();` has an identifier before `Frob(` -- the expression
  // keyword must not read as a declaring type.
  const RepoModel repo({Src("src/util/a.cc",
                            "int Frob() { return 1; }\n"
                            "int Use() { return Frob(); }\n")});
  const auto sites = SitesOf(repo, "src/util/a.cc", "Use");
  ASSERT_NE(SiteNamed(sites, "Frob"), nullptr);
}

TEST(CallSites, ThisReceiverUsesTheEnclosingClass) {
  const RepoModel repo({Src("src/util/a.cc",
                            "struct Counter {\n"
                            "  int Get() { return 1; }\n"
                            "  int Twice() { return this->Get() * 2; }\n"
                            "};\n")});
  const auto sites = SitesOf(repo, "src/util/a.cc", "Twice");
  const RawCallSite* get = SiteNamed(sites, "Get");
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->kind, CallKind::kMember);
  EXPECT_EQ(get->receiver_type, "Counter");
}

// --- resolution -------------------------------------------------------------

TEST(CallGraphResolution, OverloadSetsResolveToEveryMatchingDefinition) {
  const CallGraph graph = CallGraph::Build(
      RepoModel({Src("src/util/o.cc",
                     "int Clamp(int v) { return v; }\n"
                     "double Clamp(double v) { return v; }\n"
                     "int Use() { return Clamp(3); }\n")}));
  const std::size_t use = graph.FindNode("Use");
  ASSERT_NE(use, kNpos);
  const CallEdge* edge = EdgeNamed(graph.nodes()[use], "Clamp");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->resolution, Resolution::kExact);
  EXPECT_EQ(edge->targets.size(), 2u) << "both overloads are targets";
}

TEST(CallGraphResolution, ExternalCallsKeepAnExplicitUnresolvedEdge) {
  const CallGraph graph = CallGraph::Build(
      RepoModel({Src("src/util/x.cc",
                     "int Use(char* dst, const char* from) {\n"
                     "  memcpy(dst, from, 4);\n"
                     "  return std::atoi(from);\n"
                     "}\n")}));
  const std::size_t use = graph.FindNode("Use");
  ASSERT_NE(use, kNpos);
  const CallEdge* libc = EdgeNamed(graph.nodes()[use], "memcpy");
  ASSERT_NE(libc, nullptr) << "the edge is kept, not dropped";
  EXPECT_EQ(libc->resolution, Resolution::kUnresolved);
  EXPECT_TRUE(libc->targets.empty());
  const CallEdge* std_call = EdgeNamed(graph.nodes()[use], "atoi");
  ASSERT_NE(std_call, nullptr);
  EXPECT_EQ(std_call->resolution, Resolution::kUnresolved);
}

TEST(CallGraphResolution, TypedReceiverPinsTheMethod) {
  const CallGraph graph = CallGraph::Build(
      RepoModel({Src("src/util/r.cc",
                     "struct Rng { double NextDouble() { return 0.5; } };\n"
                     "double Use() {\n"
                     "  Rng rng(7);\n"
                     "  return rng.NextDouble();\n"
                     "}\n")}));
  const std::size_t use = graph.FindNode("Use");
  ASSERT_NE(use, kNpos);
  const CallEdge* edge = EdgeNamed(graph.nodes()[use], "NextDouble");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->resolution, Resolution::kExact);
  ASSERT_EQ(edge->targets.size(), 1u);
  EXPECT_EQ(graph.nodes()[edge->targets[0]].qualified_name,
            "Rng::NextDouble");
}

TEST(CallGraphResolution, UntypedReceiverFallsBackToMethodUnion) {
  const CallGraph graph = CallGraph::Build(
      RepoModel({Src("src/util/u.cc",
                     "struct A { void Frob() {} };\n"
                     "struct B { void Frob() {} };\n"
                     "void Use(Thing& t) { t.Frob(); }\n")}));
  const std::size_t use = graph.FindNode("Use");
  ASSERT_NE(use, kNpos);
  const CallEdge* edge = EdgeNamed(graph.nodes()[use], "Frob");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->resolution, Resolution::kMethodUnion);
  EXPECT_EQ(edge->targets.size(), 2u) << "every class with a Frob";
}

TEST(CallGraphResolution, FreeCallsPreferTheCallingFileOverOtherModules) {
  // Two modules each define a static helper `Scale`; the call must not
  // grow a phantom cross-module edge.
  const CallGraph graph = CallGraph::Build(RepoModel({
      Src("src/util/a.cc",
          "int Scale(int v) { return v * 2; }\n"
          "int Use() { return Scale(3); }\n"),
      Src("src/channel/b.cc", "int Scale(int v) { return v * 10; }\n"),
  }));
  const std::size_t use = graph.FindNode("Use");
  ASSERT_NE(use, kNpos);
  const CallEdge* edge = EdgeNamed(graph.nodes()[use], "Scale");
  ASSERT_NE(edge, nullptr);
  ASSERT_EQ(edge->targets.size(), 1u);
  EXPECT_EQ(graph.nodes()[edge->targets[0]].path, "src/util/a.cc");
}

// --- effect summaries and propagation ---------------------------------------

TEST(EffectSummaries, RecursionAndCyclesTerminateAndPropagate) {
  const RepoModel repo(
      {Src("src/util/c.cc",
           "#include <cstdlib>\n"
           "int Pong(int n);\n"
           "int Ping(int n) {\n"
           "  if (n <= 0) { return ReadKnob(); }\n"
           "  return Pong(n - 1);\n"
           "}\n"
           "int Pong(int n) { return Ping(n - 1); }\n"
           "int ReadKnob() { return std::getenv(\"K\") != nullptr; }\n"
           "int Self(int n) { return n <= 0 ? 0 : Self(n - 1); }\n")});
  const ProgramAnalysis analysis = ProgramAnalysis::Build(repo);
  const CallGraph& graph = analysis.graph();

  const std::size_t knob = graph.FindNode("ReadKnob");
  ASSERT_NE(knob, kNpos);
  EXPECT_NE(analysis.DirectEffectsOf(knob) & kEffectReadsEnv, 0u);

  // Ping <-> Pong is a cycle; both inherit the env read through it.
  for (const char* name : {"Ping", "Pong"}) {
    const std::size_t n = graph.FindNode(name);
    ASSERT_NE(n, kNpos) << name;
    EXPECT_EQ(analysis.DirectEffectsOf(n) & kEffectReadsEnv, 0u) << name;
    EXPECT_NE(analysis.EffectsOf(n) & kEffectReadsEnv, 0u) << name;
  }

  const std::string witness =
      analysis.WitnessPath(graph.FindNode("Pong"), kEffectReadsEnv);
  EXPECT_NE(witness.find("Pong (src/util/c.cc:"), std::string::npos)
      << witness;
  EXPECT_NE(witness.find("ReadKnob"), std::string::npos) << witness;
  EXPECT_NE(witness.find("[reads-env]"), std::string::npos) << witness;

  // Self-recursion reaches the fixed point without the effect appearing.
  const std::size_t self = graph.FindNode("Self");
  ASSERT_NE(self, kNpos);
  EXPECT_EQ(analysis.EffectsOf(self) & kEffectReadsEnv, 0u);
}

TEST(EffectSummaries, DirectEffectsAreExtractedWithOrigins) {
  const RepoModel repo(
      {Src("src/util/e.cc",
           "#include <chrono>\n"
           "#include <unordered_map>\n"
           "long Stamp() {\n"
           "  return std::chrono::steady_clock::now()\n"
           "      .time_since_epoch().count();\n"
           "}\n"
           "int Sum() {\n"
           "  std::unordered_map<int, int> m;\n"
           "  int s = 0;\n"
           "  for (const auto& kv : m) { s += kv.second; }\n"
           "  return s;\n"
           "}\n")});
  const ProgramAnalysis analysis = ProgramAnalysis::Build(repo);
  const CallGraph& graph = analysis.graph();

  const std::size_t stamp = graph.FindNode("Stamp");
  ASSERT_NE(stamp, kNpos);
  EXPECT_NE(analysis.DirectEffectsOf(stamp) & kEffectWallClock, 0u);
  bool found_origin = false;
  for (const EffectOrigin& origin : analysis.OriginsOf(stamp)) {
    if (origin.effect == kEffectWallClock) {
      found_origin = true;
      EXPECT_NE(origin.detail.find("steady_clock"), std::string::npos);
      EXPECT_EQ(origin.line, 4);
    }
  }
  EXPECT_TRUE(found_origin);

  const std::size_t sum = graph.FindNode("Sum");
  ASSERT_NE(sum, kNpos);
  EXPECT_NE(analysis.DirectEffectsOf(sum) & kEffectUnorderedIter, 0u);
}

TEST(EffectSummaries, WallClockStaysConfinedToTheClockSeam) {
  const RepoModel repo({
      Src("src/resilience/clock.cc",
          "#include <chrono>\n"
          "long SteadyNow() {\n"
          "  return std::chrono::steady_clock::now()\n"
          "      .time_since_epoch().count();\n"
          "}\n"),
      Src("src/resilience/outcome.cc",
          "long SteadyNow();\n"
          "long ReportFingerprint() { return SteadyNow(); }\n"),
  });
  const ProgramAnalysis analysis = ProgramAnalysis::Build(repo);
  const CallGraph& graph = analysis.graph();

  const std::size_t seam = graph.FindNode("SteadyNow");
  ASSERT_NE(seam, kNpos);
  EXPECT_NE(analysis.DirectEffectsOf(seam) & kEffectWallClock, 0u);

  // The seam absorbs the effect: its caller never sees wall-clock.
  const std::size_t caller = graph.FindNode("ReportFingerprint");
  ASSERT_NE(caller, kNpos);
  EXPECT_EQ(analysis.EffectsOf(caller) & kEffectWallClock, 0u);

  std::vector<Finding> findings;
  CheckDeterminismTaint(analysis, findings);
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

// --- io-seam-discipline -----------------------------------------------------

TEST(IoSeamDiscipline, FlagsRawFileIoOutsideTheSeam) {
  const RepoModel repo(
      {Src("src/analysis/save.cc",
           "#include <cstdio>\n"
           "#include <fstream>\n"
           "void SaveStats() {\n"
           "  std::ofstream out(\"stats.txt\");\n"
           "}\n"
           "void TouchMarker() { std::fopen(\"marker\", \"w\"); }\n")});
  const ProgramAnalysis analysis = ProgramAnalysis::Build(repo);
  const std::size_t save = analysis.graph().FindNode("SaveStats");
  ASSERT_NE(save, kNpos);
  EXPECT_NE(analysis.DirectEffectsOf(save) & kEffectRawFileIo, 0u);

  std::vector<Finding> findings;
  CheckIoSeamDiscipline(analysis, findings);
  ASSERT_EQ(CountRule(findings, "io-seam-discipline"), 2u)
      << FormatText(findings);
  EXPECT_EQ(findings[0].file, "src/analysis/save.cc");
  EXPECT_NE(findings[0].message.find("failpoint::Fs"), std::string::npos)
      << findings[0].message;
}

TEST(IoSeamDiscipline, TheSeamAbsorbsTheEffectForItsCallers) {
  const RepoModel repo({
      Src("src/failpoint/fs.cc",
          "#include <fstream>\n"
          "void WriteWhole() { std::ofstream out(\"f\"); }\n"),
      Src("src/resilience/checkpoint.cc",
          "void WriteWhole();\n"
          "void WriteCheckpointAtomic() { WriteWhole(); }\n"),
  });
  const ProgramAnalysis analysis = ProgramAnalysis::Build(repo);
  // The seam has the raw effect itself...
  const std::size_t seam = analysis.graph().FindNode("WriteWhole");
  ASSERT_NE(seam, kNpos);
  EXPECT_NE(analysis.DirectEffectsOf(seam) & kEffectRawFileIo, 0u);
  // ...but absorbs it: a caller routing through the seam stays clean,
  // exactly like resilience/clock.h absorbs wall-clock.
  const std::size_t caller = analysis.graph().FindNode("WriteCheckpointAtomic");
  ASSERT_NE(caller, kNpos);
  EXPECT_EQ(analysis.EffectsOf(caller) & kEffectRawFileIo, 0u);

  std::vector<Finding> findings;
  CheckIoSeamDiscipline(analysis, findings);
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

TEST(IoSeamDiscipline, OnlySrcIsInScope) {
  // Tests and tools read and write files legitimately (fixtures, CSV
  // plans); the seam rule polices the library only.
  const RepoModel repo({
      Src("tests/some_test.cc",
          "#include <fstream>\n"
          "void WriteFixture() { std::ofstream out(\"fixture\"); }\n"),
      Src("tools/nbtool.cc",
          "#include <fstream>\n"
          "void LoadPlan() { std::ifstream in(\"plan.csv\"); }\n"),
  });
  std::vector<Finding> findings;
  CheckIoSeamDiscipline(ProgramAnalysis::Build(repo), findings);
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

// --- determinism-taint ------------------------------------------------------

TEST(DeterminismTaint, FlagsWallClockReachingAFingerprintWithAWitnessPath) {
  const RepoModel repo(
      {Src("src/analysis/f.cc",
           "#include <chrono>\n"
           "long StampNow() {\n"
           "  return std::chrono::steady_clock::now()\n"
           "      .time_since_epoch().count();\n"
           "}\n"
           "long ReportFingerprint() { return StampNow(); }\n")});
  std::vector<Finding> findings;
  CheckDeterminismTaint(ProgramAnalysis::Build(repo), findings);

  // Two findings: the raw clock outside the seam, and the tainted sink.
  ASSERT_EQ(CountRule(findings, "determinism-taint"), 2u)
      << FormatText(findings);
  const auto sink =
      std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.message.find("sink") != std::string::npos;
      });
  ASSERT_NE(sink, findings.end());
  EXPECT_EQ(sink->file, "src/analysis/f.cc");
  EXPECT_NE(sink->message.find("ReportFingerprint"), std::string::npos);
  EXPECT_NE(sink->message.find("wall-clock"), std::string::npos);
  // The witness path names every hop down to the origin.
  EXPECT_NE(sink->message.find("-> StampNow (src/analysis/f.cc:"),
            std::string::npos)
      << sink->message;
}

TEST(DeterminismTaint, AcceptsTheInjectableClockPattern) {
  // A checkpoint writer timestamping through Clock::NowMillis is the
  // sanctioned design -- injected time is replayable, so no finding.
  const RepoModel repo(
      {Src("src/resilience/run.cc",
           "struct Clock { virtual long NowMillis() = 0; };\n"
           "long StampCheckpoint(Clock& clock) {\n"
           "  return clock.NowMillis();\n"
           "}\n")});
  const ProgramAnalysis analysis = ProgramAnalysis::Build(repo);
  const std::size_t sink = analysis.graph().FindNode("StampCheckpoint");
  ASSERT_NE(sink, kNpos);
  EXPECT_TRUE(IsDeterminismSink(analysis.graph().nodes()[sink]));
  EXPECT_NE(analysis.EffectsOf(sink) & kEffectInjectedClock, 0u);

  std::vector<Finding> findings;
  CheckDeterminismTaint(analysis, findings);
  EXPECT_TRUE(findings.empty()) << FormatText(findings);
}

// --- lockset-discipline -----------------------------------------------------

TEST(LocksetDiscipline, FlagsUnlockedWritesReachableFromWorkers) {
  const RepoModel repo(
      {Src("src/analysis/s.cc",
           "#include <mutex>\n"
           "int g_hits = 0;\n"
           "std::mutex g_mu;\n"
           "void Bump() { g_hits += 1; }\n"
           "void Tally() {\n"
           "  std::lock_guard<std::mutex> lock(g_mu);\n"
           "  g_hits += 1;\n"
           "}\n"
           "void Sweep() {\n"
           "  ParallelForEach(8, [](int i) { Bump(); Tally(); });\n"
           "  g_hits = 0;\n"
           "}\n")});
  std::vector<Finding> findings;
  CheckLocksetDiscipline(ProgramAnalysis::Build(repo), findings);

  // Bump is flagged; Tally holds a lock at its write; Sweep is the root
  // (its own writes may be sequential code around the parallel region).
  ASSERT_EQ(findings.size(), 1u) << FormatText(findings);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("Bump"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Sweep"), std::string::npos)
      << "the report names the parallel root";
  // The witness flow walks root -> callee -> write.
  ASSERT_GE(findings[0].flow.size(), 3u) << FormatText(findings);
  EXPECT_NE(findings[0].flow.front().text.find("Sweep"), std::string::npos);
  EXPECT_NE(findings[0].flow.back().text.find("unlocked write"),
            std::string::npos);
}

TEST(LocksetDiscipline, SeesThroughFlowWhereV3CouldNot) {
  // Guarded() takes the lock on every path to its write: v3's "writes but
  // never locks" test would pass it too, but an early return BEFORE the
  // guard plus a write after it is the case only the CFG can judge.
  const RepoModel repo(
      {Src("src/analysis/s.cc",
           "#include <mutex>\n"
           "int g_total = 0;\n"
           "std::mutex g_mu;\n"
           "void Guarded(int n) {\n"
           "  if (n == 0) {\n"
           "    return;\n"
           "  }\n"
           "  std::lock_guard<std::mutex> lock(g_mu);\n"
           "  g_total += n;\n"
           "}\n"
           "void Leaky(int n) {\n"
           "  if (n > 0) {\n"
           "    std::lock_guard<std::mutex> lock(g_mu);\n"
           "    g_total += n;\n"
           "    return;\n"
           "  }\n"
           "  g_total -= 1;\n"
           "}\n"
           "void Sweep() {\n"
           "  ParallelForEach(8, [](int i) { Guarded(i); Leaky(i); });\n"
           "}\n")});
  std::vector<Finding> findings;
  CheckLocksetDiscipline(ProgramAnalysis::Build(repo), findings);

  // Guarded is clean (every path to its write holds the lock); Leaky's
  // second write runs with an empty lockset.
  ASSERT_EQ(findings.size(), 1u) << FormatText(findings);
  EXPECT_NE(findings[0].message.find("Leaky"), std::string::npos);
  EXPECT_EQ(findings[0].file, "src/analysis/s.cc");
}

// --- layering-reachability --------------------------------------------------

TEST(LayeringReachability, CatchesTransitiveViolationsAndSkipsUnions) {
  const RepoModel repo({
      // util -> tasks: a forward declaration with no witnessing #include,
      // invisible to the per-file layering rule.
      Src("src/util/fixture.cc",
          "int TaskCount();\n"
          "int UtilThing() { return TaskCount(); }\n"),
      Src("src/tasks/fixture.cc", "int TaskCount() { return 3; }\n"),
      // tasks -> util is allowed by the layer table.
      Src("src/util/w.cc", "int UtilHelper() { return 1; }\n"),
      Src("src/tasks/t.cc", "int TaskThing() { return UtilHelper(); }\n"),
      // A guessed receiver (kMethodUnion) crossing modules is skipped.
      Src("src/tasks/frob.cc",
          "struct Gadget { int Frob() { return 2; } };\n"),
      Src("src/util/m.cc",
          "int UseFrob(Widget& w) { return w.Frob(); }\n"),
  });
  std::vector<Finding> findings;
  CheckLayeringReachability(ProgramAnalysis::Build(repo), findings);

  ASSERT_EQ(findings.size(), 1u) << FormatText(findings);
  EXPECT_EQ(findings[0].file, "src/util/fixture.cc");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("TaskCount"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/tasks/"), std::string::npos);
}

// --- the incremental cache --------------------------------------------------

TEST(LintCache, SerializationRoundTripsByteIdentically) {
  const RepoModel repo({
      Src("src/util/a.cc",
          "int Helper() { return 1; }\n"
          "int Use() { return Helper(); }\n"),
      Src("src/analysis/b.cc",
          "#include <cstdlib>\n"
          "int ReadKnob() { return std::getenv(\"K\") != nullptr; }\n"),
  });
  std::size_t hits = 0;
  const std::vector<FileExtract> fresh = ExtractWithCache(repo, {}, &hits);
  EXPECT_EQ(hits, 0u);
  ASSERT_EQ(fresh.size(), 2u);

  const std::string text = SerializeCache(fresh);
  EXPECT_EQ(text.substr(0, 14), "nblint-cache 4");
  EXPECT_EQ(SerializeCache(ParseCache(text)), text);
}

TEST(LintCache, WarmRunReusesEveryUnchangedFile) {
  const std::vector<SourceFile> sources = {
      Src("src/util/a.cc",
          "int Helper() { return 1; }\n"
          "int Use() { return Helper(); }\n"),
      Src("src/analysis/b.cc",
          "#include <cstdlib>\n"
          "int ReadKnob() { return std::getenv(\"K\") != nullptr; }\n"),
  };
  const RepoModel repo(sources);
  const std::vector<FileExtract> fresh = ExtractWithCache(repo, {}, nullptr);
  const std::vector<FileExtract> cached = ParseCache(SerializeCache(fresh));

  std::size_t hits = 0;
  const std::vector<FileExtract> warm =
      ExtractWithCache(repo, cached, &hits);
  EXPECT_EQ(hits, 2u);
  EXPECT_EQ(SerializeCache(warm), SerializeCache(fresh));

  // Editing one file invalidates exactly that file.
  std::vector<SourceFile> edited = sources;
  edited[1].content += "int ReadMore() { return ReadKnob(); }\n";
  const RepoModel repo2(edited);
  hits = 0;
  const std::vector<FileExtract> partial =
      ExtractWithCache(repo2, cached, &hits);
  EXPECT_EQ(hits, 1u);
  ASSERT_EQ(partial.size(), 2u);
  EXPECT_EQ(partial[1].functions.size(), 2u);
}

TEST(LintCache, PairedHeaderEditsInvalidateTheSource) {
  // Receiver typing consults the paired header, so the .cc extract must
  // not be reused when only the .h changed.
  const std::vector<SourceFile> sources = {
      Src("src/util/a.h", "struct Rng { double NextDouble(); };\n"),
      Src("src/util/a.cc",
          "double Use() {\n"
          "  Rng rng(7);\n"
          "  return rng.NextDouble();\n"
          "}\n"),
  };
  const RepoModel repo(sources);
  const std::vector<FileExtract> cached =
      ParseCache(SerializeCache(ExtractWithCache(repo, {}, nullptr)));

  std::vector<SourceFile> edited = sources;
  edited[0].content += "// grew a comment\n";
  std::size_t hits = 0;
  const std::vector<FileExtract> partial =
      ExtractWithCache(RepoModel(edited), cached, &hits);
  EXPECT_EQ(partial.size(), 2u);
  EXPECT_EQ(hits, 0u) << "both the header and its pair must re-extract";
}

TEST(LintCache, MalformedInputFallsBackToAColdRun) {
  EXPECT_TRUE(ParseCache("").empty());
  EXPECT_TRUE(ParseCache("garbage\n").empty());
  EXPECT_TRUE(ParseCache("nblint-cache 99\n").empty());
  // Stale pre-raw-file-io / pre-raw-socket caches must be discarded
  // wholesale: their effect masks lack the newer bits.
  EXPECT_TRUE(ParseCache("nblint-cache 1\n").empty());
  EXPECT_TRUE(ParseCache("nblint-cache 2\n").empty());
  // v3 caches predate the CFG facts (widths, rng-local flags, mb/uw/nw/na
  // records); replaying them would blind the flow-sensitive rules.
  EXPECT_TRUE(
      ParseCache("nblint-cache 3\nfile src/a.cc util deadbeef -\n").empty());
  // An fn record before any file, a truncated fn record, a call record with
  // a bad rng-local flag, and an mb record with a garbled arm all poison
  // the whole cache.
  EXPECT_TRUE(
      ParseCache("nblint-cache 4\nfn 3 0 0 - orphan -\n").empty());
  EXPECT_TRUE(
      ParseCache("nblint-cache 4\nfile src/a.cc util deadbeef -\n"
                 "fn 3 0 orphan -\n")
          .empty());
  EXPECT_TRUE(
      ParseCache("nblint-cache 4\nfile src/a.cc util deadbeef -\n"
                 "fn 3 0 0 - F -\ncall 0 3 G - - 7\n")
          .empty());
  EXPECT_TRUE(
      ParseCache("nblint-cache 4\nfile src/a.cc util deadbeef -\n"
                 "fn 3 0 0 - F -\nmb 3 1,x 2\n")
          .empty());
}

// --- the finding baseline ---------------------------------------------------

TEST(LintBaseline, RoundTripsWarnFindingsKeyedByRuleAndFile) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "determinism-taint", "first", Severity::kWarn},
      {"src/a.cc", 9, "determinism-taint", "second", Severity::kWarn},
      {"src/b.cc", 1, "banned-random", "errors never baseline",
       Severity::kError},
  };
  const std::string json = FormatBaseline(findings);
  const std::vector<BaselineEntry> baseline = ParseBaseline(json);
  // The two warn findings share (rule, file) and collapse to one entry;
  // the error finding is excluded.
  ASSERT_EQ(baseline.size(), 1u) << json;
  EXPECT_EQ(baseline[0].rule_id, "determinism-taint");
  EXPECT_EQ(baseline[0].file, "src/a.cc");
}

TEST(LintBaseline, NewFindingsIgnoresBaselinedAndStaleEntries) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "determinism-taint", "msg", Severity::kWarn},
      {"src/b.cc", 1, "banned-random", "err", Severity::kError},
  };
  // No baseline: every warn finding is new (errors fail on their own).
  ASSERT_EQ(NewFindings(findings, {}).size(), 1u);
  EXPECT_EQ(NewFindings(findings, {})[0].file, "src/a.cc");
  // Covered plus a stale entry nothing matches: nothing is new.
  const std::vector<BaselineEntry> baseline = {
      {"determinism-taint", "src/a.cc"},
      {"shared-state-discipline", "src/long_gone.cc"},
  };
  EXPECT_TRUE(NewFindings(findings, baseline).empty());
}

TEST(LintBaseline, MalformedJsonYieldsAnEmptyBaseline) {
  EXPECT_TRUE(ParseBaseline("").empty());
  EXPECT_TRUE(ParseBaseline("not json at all").empty());
  EXPECT_TRUE(ParseBaseline("{\"version\": 1}").empty());
}

// --- the engine's whole-program mode ----------------------------------------

TEST(WholeProgramEngine, SuppressionsSilenceProgramFindings) {
  // The same raw-clock read, with and without a justified NBLINT comment
  // targeting the finding's line.
  const std::vector<SourceFile> bare_files = {
      Src("src/analysis/f.cc",
          "#include <chrono>\n"
          "long StampNow() {\n"
          "  return std::chrono::steady_clock::now()\n"
          "      .time_since_epoch().count();\n"
          "}\n")};
  const std::vector<SourceFile> suppressed_files = {
      Src("src/analysis/f.cc",
          "#include <chrono>\n"
          "long StampNow() {\n"
          "  // NBLINT(determinism-taint): fixture clock is cosmetic\n"
          "  return std::chrono::steady_clock::now()\n"
          "      .time_since_epoch().count();\n"
          "}\n")};
  LintOptions options;
  options.whole_program = true;
  const auto bare = RunAllChecks(bare_files, options);
  const auto quiet = RunAllChecks(suppressed_files, options);
  EXPECT_EQ(CountRule(bare, "determinism-taint"), 1u) << FormatText(bare);
  EXPECT_EQ(CountRule(quiet, "determinism-taint"), 0u) << FormatText(quiet);
  EXPECT_EQ(CountRule(quiet, "suppression-justification"), 0u);
}

TEST(WholeProgramEngine, StatsAndCacheFlowThroughLintOptions) {
  const std::vector<SourceFile> files = {
      Src("src/util/a.cc",
          "int Helper() { return 1; }\n"
          "int Use() { return Helper(); }\n")};
  LintStats stats;
  std::string cache;
  LintOptions options;
  options.whole_program = true;
  options.stats = &stats;
  options.cache_out = &cache;
  EXPECT_TRUE(RunAllChecks(files, options).empty());
  EXPECT_EQ(stats.files, 1u);
  EXPECT_EQ(stats.nodes, 2u);
  EXPECT_EQ(stats.edges, 1u);
  EXPECT_EQ(stats.resolved_edges, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_FALSE(cache.empty());

  LintStats warm_stats;
  std::string warm_cache;
  LintOptions warm;
  warm.whole_program = true;
  warm.stats = &warm_stats;
  warm.cache_in = cache;
  warm.cache_out = &warm_cache;
  EXPECT_TRUE(RunAllChecks(files, warm).empty());
  EXPECT_EQ(warm_stats.cache_hits, 1u);
  EXPECT_EQ(warm_cache, cache) << "warm runs re-serialize identically";
}

}  // namespace
}  // namespace noisybeeps::lint
