#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat stat;
  stat.Add(3.5);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min(), 3.5);
  EXPECT_DOUBLE_EQ(stat.max(), 3.5);
}

TEST(RunningStat, KnownMoments) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(v);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStat, AgreesWithTwoPassOnRandomData) {
  Rng rng(31);
  RunningStat stat;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble() * 100 - 50;
    values.push_back(v);
    stat.Add(v);
  }
  double mean = 0;
  for (double v : values) mean += v;
  mean /= values.size();
  double var = 0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= values.size() - 1;
  EXPECT_NEAR(stat.mean(), mean, 1e-9);
  EXPECT_NEAR(stat.variance(), var, 1e-6);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  for (std::size_t successes : {0u, 1u, 25u, 50u, 99u, 100u}) {
    const WilsonInterval ci = WilsonScoreInterval(successes, 100);
    const double p = successes / 100.0;
    EXPECT_LE(ci.low, p + 1e-12);
    EXPECT_GE(ci.high, p - 1e-12);
    EXPECT_GE(ci.low, 0.0);
    EXPECT_LE(ci.high, 1.0);
  }
}

TEST(WilsonInterval, NarrowsWithMoreTrials) {
  const WilsonInterval small = WilsonScoreInterval(5, 10);
  const WilsonInterval large = WilsonScoreInterval(500, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(WilsonInterval, ExtremesStayProper) {
  const WilsonInterval zero = WilsonScoreInterval(0, 30);
  EXPECT_DOUBLE_EQ(zero.low, 0.0);
  EXPECT_GT(zero.high, 0.0);
  const WilsonInterval full = WilsonScoreInterval(30, 30);
  EXPECT_DOUBLE_EQ(full.high, 1.0);
  EXPECT_LT(full.low, 1.0);
}

TEST(WilsonInterval, RejectsBadArguments) {
  EXPECT_THROW((void)WilsonScoreInterval(1, 0), std::invalid_argument);
  EXPECT_THROW((void)WilsonScoreInterval(5, 4), std::invalid_argument);
}

TEST(WilsonInterval, CoversTrueRate) {
  // ~95% of intervals over repeated experiments should contain p.
  Rng rng(32);
  const double p = 0.3;
  int covered = 0;
  constexpr int kExperiments = 400;
  for (int e = 0; e < kExperiments; ++e) {
    std::size_t hits = 0;
    constexpr std::size_t kTrials = 200;
    for (std::size_t t = 0; t < kTrials; ++t) hits += rng.Bernoulli(p);
    const WilsonInterval ci = WilsonScoreInterval(hits, kTrials);
    covered += (ci.low <= p && p <= ci.high);
  }
  EXPECT_GT(covered, kExperiments * 0.90);
}

TEST(RunningStat, MergeMatchesOneShotAccumulation) {
  Rng rng(33);
  std::vector<double> values;
  for (int i = 0; i < 900; ++i) values.push_back(rng.UniformDouble() * 40 - 7);
  RunningStat one_shot;
  for (double v : values) one_shot.Add(v);
  // Fold three disjoint chunks -- the shape of checkpointed partial
  // aggregates -- and compare against one-shot accumulation.
  RunningStat merged;
  for (int chunk = 0; chunk < 3; ++chunk) {
    RunningStat part;
    for (int i = chunk * 300; i < (chunk + 1) * 300; ++i) part.Add(values[i]);
    merged.Merge(part);
  }
  EXPECT_EQ(merged.count(), one_shot.count());
  EXPECT_DOUBLE_EQ(merged.min(), one_shot.min());
  EXPECT_DOUBLE_EQ(merged.max(), one_shot.max());
  EXPECT_NEAR(merged.mean(), one_shot.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), one_shot.variance(), 1e-9);
}

TEST(RunningStat, MergeIsAssociative) {
  Rng rng(34);
  RunningStat a, b, c;
  for (int i = 0; i < 100; ++i) a.Add(rng.UniformDouble());
  for (int i = 0; i < 57; ++i) b.Add(rng.UniformDouble() * 3 + 1);
  for (int i = 0; i < 211; ++i) c.Add(rng.UniformDouble() * 9 - 5);
  RunningStat left = a;
  left.Merge(b);
  left.Merge(c);
  RunningStat bc = b;
  bc.Merge(c);
  RunningStat right = a;
  right.Merge(bc);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_DOUBLE_EQ(left.min(), right.min());
  EXPECT_DOUBLE_EQ(left.max(), right.max());
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmptyIsIdentity) {
  RunningStat stat;
  for (double v : {1.0, 2.0, 6.0}) stat.Add(v);
  RunningStat empty;
  stat.Merge(empty);
  EXPECT_EQ(stat.count(), 3u);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  RunningStat other;
  other.Merge(stat);
  EXPECT_EQ(other.count(), 3u);
  EXPECT_DOUBLE_EQ(other.mean(), 3.0);
  EXPECT_DOUBLE_EQ(other.min(), 1.0);
  EXPECT_DOUBLE_EQ(other.max(), 6.0);
}

TEST(SuccessCounter, MergeMatchesOneShotAndAssociates) {
  SuccessCounter one_shot, a, b, c;
  for (int i = 0; i < 30; ++i) {
    const bool success = i % 3 == 0;
    one_shot.Record(success);
    (i < 10 ? a : i < 17 ? b : c).Record(success);
  }
  SuccessCounter left = a;
  left.Merge(b);
  left.Merge(c);
  SuccessCounter bc = b;
  bc.Merge(c);
  SuccessCounter right = a;
  right.Merge(bc);
  EXPECT_EQ(left.trials(), one_shot.trials());
  EXPECT_EQ(left.successes(), one_shot.successes());
  EXPECT_EQ(right.trials(), one_shot.trials());
  EXPECT_EQ(right.successes(), one_shot.successes());
}

TEST(SuccessCounter, TracksRateAndInterval) {
  SuccessCounter counter;
  EXPECT_DOUBLE_EQ(counter.rate(), 0.0);
  for (int i = 0; i < 10; ++i) counter.Record(i < 7);
  EXPECT_EQ(counter.trials(), 10u);
  EXPECT_EQ(counter.successes(), 7u);
  EXPECT_DOUBLE_EQ(counter.rate(), 0.7);
  const WilsonInterval ci = counter.interval();
  EXPECT_LT(ci.low, 0.7);
  EXPECT_GT(ci.high, 0.7);
}

TEST(SuccessCounter, ZeroTrialsIntervalIsVacuous) {
  // With no data the interval must be the vacuous [0, 1], not the
  // Wilson formula evaluated at n = 0 (which fabricates a finite-looking
  // interval centred on z^2 / (z^2) terms that no trial ever supported).
  const SuccessCounter counter;
  ASSERT_EQ(counter.trials(), 0u);
  const WilsonInterval ci = counter.interval();
  EXPECT_DOUBLE_EQ(ci.low, 0.0);
  EXPECT_DOUBLE_EQ(ci.high, 1.0);
  // ...and at any confidence level.
  const WilsonInterval wide = counter.interval(/*z=*/3.0);
  EXPECT_DOUBLE_EQ(wide.low, 0.0);
  EXPECT_DOUBLE_EQ(wide.high, 1.0);
}

TEST(SuccessCounter, OneTrialIntervalIsInformative) {
  // The n >= 1 branch still goes through the Wilson formula: a single
  // success must pull the interval off [0, 1].
  SuccessCounter counter;
  counter.Record(true);
  const WilsonInterval ci = counter.interval();
  EXPECT_GT(ci.low, 0.0);
  EXPECT_LE(ci.high, 1.0);
  EXPECT_LT(ci.low, ci.high);
}

}  // namespace
}  // namespace noisybeeps
