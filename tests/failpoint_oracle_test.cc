// The crash-consistency oracle -- the acceptance criterion of the
// failpoint layer.  A counting FaultingFs first ENUMERATES every
// filesystem operation a checkpointed sweep performs; the oracle then
// simulates a crash at each one (InjectedCrash at that exact boundary)
// and requires a faultless rerun against the surviving files to land
// bit-identically on the uninterrupted baseline.  A companion sweep
// injects ordinary failures (FsError) at every boundary and requires the
// SAME run to complete gracefully with baseline results -- no wrong
// answer, no abort.  If any failpoint can produce a silently different
// result, these tests name it.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "failpoint/fail_plan.h"
#include "failpoint/fs.h"
#include "resilience/checkpoint.h"
#include "resilience/resilient_trials.h"
#include "util/rng.h"

namespace noisybeeps::failpoint {
namespace {

namespace stdfs = std::filesystem;

using resilience::ByteReader;
using resilience::ResilienceOptions;
using resilience::ResilientTrials;
using resilience::RunOutput;
using resilience::TrialAssessment;

std::string TempPath(const std::string& name) {
  return (stdfs::path(::testing::TempDir()) / name).string();
}

// A cheap stochastic trial: pure function of (trial rng, index), so any
// resume-path divergence shows up as a changed value.
struct Point {
  std::uint64_t value = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

struct PointAdapter {
  [[nodiscard]] std::string Encode(const Point& p) const {
    std::string out;
    resilience::AppendU64(out, p.value);
    return out;
  }
  [[nodiscard]] Point Decode(std::string_view bytes) const {
    ByteReader reader(bytes);
    return Point{reader.U64()};
  }
  [[nodiscard]] TrialAssessment Assess(const Point&) const { return {}; }
};

Point Body(int t, Rng& rng) {
  return Point{rng.NextU64() ^ static_cast<std::uint64_t>(t)};
}

constexpr int kTrials = 9;
constexpr std::uint64_t kSeed = 321;

ResilienceOptions CheckpointedOpts(const std::string& path, Fs* fs) {
  ResilienceOptions opts;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 2;
  opts.config_hash = resilience::Fnv1a64("failpoint-oracle");
  opts.num_workers = 2;
  opts.fs = fs;
  return opts;
}

RunOutput<Point> Baseline() {
  ResilienceOptions opts;
  opts.num_workers = 1;
  Rng rng(kSeed);
  return ResilientTrials(kTrials, rng, Body, PointAdapter{}, opts);
}

void CleanUp(const std::string& path) {
  stdfs::remove(path);
  stdfs::remove(path + ".tmp");
  stdfs::remove(path + ".corrupt");
}

// Counting pass: the registered failpoints of this workload, per op.
// The tag keeps the scratch checkpoint unique per TEST:
// gtest_discover_tests runs each TEST as its own ctest process, and a
// neighbour's leftover checkpoint would turn this into a resume run
// with a different op count.
std::vector<std::pair<FailOp, std::int64_t>> EnumerateFailpoints(
    const std::string& tag) {
  const std::string path = TempPath("oracle_enumerate_" + tag + ".nbckpt");
  CleanUp(path);
  FaultingFs counter(RealFs::Instance());
  Rng rng(kSeed);
  (void)ResilientTrials(kTrials, rng, Body, PointAdapter{},
                        CheckpointedOpts(path, &counter));
  CleanUp(path);
  std::vector<std::pair<FailOp, std::int64_t>> points;
  for (FailOp op : {FailOp::kRead, FailOp::kWrite, FailOp::kSync,
                    FailOp::kRename, FailOp::kRemove}) {
    for (std::int64_t hit = 0; hit < counter.HitCount(op); ++hit) {
      points.emplace_back(op, hit);
    }
  }
  return points;
}

TEST(CrashConsistencyOracle, WorkloadRegistersEnoughFailpoints) {
  // 9 trials at checkpoint_every=2 -> 5 checkpoints, each a
  // write+sync+rename, plus the initial load probe.  A shrunken
  // enumeration means the oracle below stopped proving anything.
  const auto points = EnumerateFailpoints("count");
  EXPECT_EQ(points.size(), 16u);
}

TEST(CrashConsistencyOracle, ResumeIsBitIdenticalAfterCrashAtEveryFailpoint) {
  const RunOutput<Point> baseline = Baseline();
  const std::string path = TempPath("oracle_crash.nbckpt");
  for (const auto& [op, hit] : EnumerateFailpoints("crash")) {
    const std::string label = FailOpName(op) + "@" + std::to_string(hit);
    CleanUp(path);

    // Run 1: die exactly at this failpoint.
    FailPlan plan;
    plan.Crash(op, hit, hit);
    FaultingFs fault_fs(RealFs::Instance(), plan);
    {
      Rng rng(kSeed);
      EXPECT_THROW((void)ResilientTrials(kTrials, rng, Body, PointAdapter{},
                                         CheckpointedOpts(path, &fault_fs)),
                   InjectedCrash)
          << label;
    }
    EXPECT_EQ(fault_fs.SpecFires().at(0), 1) << label;

    // Run 2: "reboot" -- faultless, different worker count, resuming from
    // whatever files the crash left behind.
    ResilienceOptions resume_opts =
        CheckpointedOpts(path, RealFs::Instance());
    resume_opts.num_workers = 4;
    Rng rng(kSeed);
    const RunOutput<Point> resumed =
        ResilientTrials(kTrials, rng, Body, PointAdapter{}, resume_opts);
    EXPECT_EQ(resumed.results, baseline.results)
        << label << ": crash-and-reboot changed per-trial results";
    EXPECT_EQ(resumed.report.Fingerprint(), baseline.report.Fingerprint())
        << label;
    EXPECT_FALSE(stdfs::exists(path + ".tmp"))
        << label << ": reboot left a torn temp file";
  }
  CleanUp(path);
}

TEST(CrashConsistencyOracle, RunDegradesGracefullyUnderFailureAtEveryFailpoint) {
  const RunOutput<Point> baseline = Baseline();
  const std::string path = TempPath("oracle_fail.nbckpt");
  for (const auto& [op, hit] : EnumerateFailpoints("fail")) {
    const std::string label = FailOpName(op) + "@" + std::to_string(hit);
    CleanUp(path);
    FailPlan plan;
    plan.Fail(op, hit, hit);
    FaultingFs fault_fs(RealFs::Instance(), plan);
    Rng rng(kSeed);
    RunOutput<Point> run;
    // No throw: an I/O failure must degrade the run, never kill it.
    EXPECT_NO_THROW(run = ResilientTrials(kTrials, rng, Body, PointAdapter{},
                                          CheckpointedOpts(path, &fault_fs)))
        << label;
    EXPECT_EQ(fault_fs.SpecFires().at(0), 1) << label;
    EXPECT_EQ(run.results, baseline.results)
        << label << ": a handled I/O failure changed per-trial results";
    EXPECT_EQ(run.report.Fingerprint(), baseline.report.Fingerprint())
        << label;
    if (op == FailOp::kWrite || op == FailOp::kSync || op == FailOp::kRename) {
      EXPECT_EQ(run.report.checkpoint_write_failures, 1) << label;
      EXPECT_FALSE(stdfs::exists(path + ".tmp"))
          << label << ": failed checkpoint write leaked its temp file";
    }
  }
  CleanUp(path);
}

TEST(CrashConsistencyOracle, TornWritesAtEveryCheckpointAreRecoverable) {
  // The torn kind is the classic power-loss scenario: a prefix of the new
  // checkpoint is on disk under the .tmp name when the machine dies.  The
  // rename never happened, so the PREVIOUS checkpoint must still resume.
  const RunOutput<Point> baseline = Baseline();
  const std::string path = TempPath("oracle_torn.nbckpt");
  for (std::int64_t hit = 0; hit < 5; ++hit) {
    for (double fraction : {0.0, 0.3, 0.9}) {
      const std::string label =
          "torn@" + std::to_string(hit) + ":" + std::to_string(fraction);
      CleanUp(path);
      FailPlan plan;
      plan.Torn(hit, hit, fraction);
      FaultingFs fault_fs(RealFs::Instance(), plan);
      {
        Rng rng(kSeed);
        EXPECT_THROW((void)ResilientTrials(kTrials, rng, Body, PointAdapter{},
                                           CheckpointedOpts(path, &fault_fs)),
                     InjectedCrash)
            << label;
      }
      ResilienceOptions resume_opts =
          CheckpointedOpts(path, RealFs::Instance());
      resume_opts.num_workers = 3;
      Rng rng(kSeed);
      const RunOutput<Point> resumed =
          ResilientTrials(kTrials, rng, Body, PointAdapter{}, resume_opts);
      EXPECT_EQ(resumed.results, baseline.results) << label;
      EXPECT_EQ(resumed.report.Fingerprint(), baseline.report.Fingerprint())
          << label;
    }
  }
  CleanUp(path);
}

TEST(GracefulDegradation, CorruptCheckpointIsQuarantinedAndRecomputed) {
  const RunOutput<Point> baseline = Baseline();
  const std::string path = TempPath("oracle_quarantine.nbckpt");
  const struct {
    const char* label;
    FailPlan plan;
  } kRots[] = {
      {"corrupt", FailPlan(11).Corrupt(0, 0, 4)},
      {"truncate", FailPlan().Truncate(0, 0, 0.5)},
      {"unreadable", FailPlan().Fail(FailOp::kRead, 0, 0)},
  };
  for (const auto& rot : kRots) {
    CleanUp(path);
    // Stage 1: a faultless interrupted run leaves a real checkpoint.
    {
      ResilienceOptions opts = CheckpointedOpts(path, RealFs::Instance());
      opts.halt_after_checkpoints = 2;
      Rng rng(kSeed);
      EXPECT_THROW((void)ResilientTrials(kTrials, rng, Body, PointAdapter{},
                                         opts),
                   resilience::RunInterrupted)
          << rot.label;
    }
    ASSERT_TRUE(stdfs::exists(path)) << rot.label;

    // Stage 2: the resume read rots.  The run must quarantine the file,
    // recompute from scratch, and still land on the baseline bits.
    FaultingFs fault_fs(RealFs::Instance(), rot.plan);
    ResilienceOptions opts = CheckpointedOpts(path, &fault_fs);
    opts.num_workers = 4;
    Rng rng(kSeed);
    const RunOutput<Point> run =
        ResilientTrials(kTrials, rng, Body, PointAdapter{}, opts);
    EXPECT_EQ(fault_fs.SpecFires().at(0), 1) << rot.label;
    EXPECT_EQ(run.results, baseline.results) << rot.label;
    EXPECT_EQ(run.report.Fingerprint(), baseline.report.Fingerprint())
        << rot.label;
    EXPECT_EQ(run.report.checkpoints_quarantined, 1) << rot.label;
    EXPECT_EQ(run.report.resumed_trials, 0)
        << rot.label << ": a quarantined checkpoint must not resume trials";
    EXPECT_TRUE(stdfs::exists(path + ".corrupt"))
        << rot.label << ": the rotten file must be kept for post-mortem";
  }
  CleanUp(path);
}

TEST(GracefulDegradation, WriteFailuresNeverLoseTheSweep) {
  // Every checkpoint write fails, forever: the sweep still completes with
  // baseline results and honest accounting.
  const RunOutput<Point> baseline = Baseline();
  const std::string path = TempPath("oracle_all_writes_fail.nbckpt");
  CleanUp(path);
  FaultingFs fault_fs(RealFs::Instance(),
                      FailPlan().Fail(FailOp::kWrite, 0));
  Rng rng(kSeed);
  const RunOutput<Point> run = ResilientTrials(
      kTrials, rng, Body, PointAdapter{}, CheckpointedOpts(path, &fault_fs));
  EXPECT_EQ(run.results, baseline.results);
  EXPECT_EQ(run.report.Fingerprint(), baseline.report.Fingerprint());
  EXPECT_EQ(run.report.checkpoint_write_failures, 5);
  EXPECT_EQ(run.report.checkpoints_written, 0);
  EXPECT_FALSE(stdfs::exists(path));
  EXPECT_FALSE(stdfs::exists(path + ".tmp"));
  CleanUp(path);
}

TEST(GracefulDegradation, LatencyFaultsAreAccountedButHarmless) {
  const RunOutput<Point> baseline = Baseline();
  const std::string path = TempPath("oracle_latency.nbckpt");
  CleanUp(path);
  FaultingFs fault_fs(RealFs::Instance(),
                      FailPlan().Latency(FailOp::kWrite, 0,
                                         FailSpec::kNoLastHit, 7));
  Rng rng(kSeed);
  const RunOutput<Point> run = ResilientTrials(
      kTrials, rng, Body, PointAdapter{}, CheckpointedOpts(path, &fault_fs));
  EXPECT_EQ(run.results, baseline.results);
  EXPECT_EQ(fault_fs.InjectedLatencyMillis(), 5 * 7);
  EXPECT_EQ(run.report.checkpoint_write_failures, 0);
  CleanUp(path);
}

}  // namespace
}  // namespace noisybeeps::failpoint
