#include "tasks/random_protocol.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "coding/rewind_sim.h"
#include "protocol/executor.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(RandomProtocol, DeterministicGivenSeeds) {
  Rng rng(1);
  const RandomProtocolSpec spec = SampleRandomProtocol(6, 50, 0.2, true, rng);
  const auto a = MakeRandomProtocol(spec);
  const auto b = MakeRandomProtocol(spec);
  EXPECT_EQ(ReferenceTranscript(*a), ReferenceTranscript(*b));
}

TEST(RandomProtocol, DensityControlsTranscriptWeight) {
  Rng rng(2);
  // With n parties each beeping at rate d, a round is 1 w.p. 1-(1-d)^n.
  for (double density : {0.02, 0.1, 0.5}) {
    const RandomProtocolSpec spec =
        SampleRandomProtocol(8, 2000, density, true, rng);
    const auto protocol = MakeRandomProtocol(spec);
    const BitString pi = ReferenceTranscript(*protocol);
    // Quantization to 1/256 shifts the effective rate slightly.
    const double quantized = static_cast<int>(density * 256) / 256.0;
    const double expected = 1.0 - std::pow(1.0 - quantized, 8);
    const double observed = static_cast<double>(pi.PopCount()) / pi.size();
    EXPECT_NEAR(observed, expected, 0.05) << density;
  }
}

TEST(RandomProtocol, AdaptiveBeepsReactToPrefix) {
  Rng rng(3);
  const RandomProtocolSpec spec =
      SampleRandomProtocol(1, 64, 0.5, true, rng);
  const auto protocol = MakeRandomProtocol(spec);
  // Same round, two different prefixes: the decisions must differ for
  // SOME round (overwhelmingly likely at density 1/2 over 64 rounds).
  BitString zeros(16);
  BitString ones;
  for (int i = 0; i < 16; ++i) ones.PushBack(true);
  int differences = 0;
  for (int m = 0; m < 48; ++m) {
    zeros.PushBack(false);
    ones.PushBack(false);
    if (protocol->party(0).ChooseBeep(zeros) !=
        protocol->party(0).ChooseBeep(ones)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 5);
}

TEST(RandomProtocol, ObliviousBeepsIgnorePrefix) {
  Rng rng(4);
  const RandomProtocolSpec spec =
      SampleRandomProtocol(1, 64, 0.5, false, rng);
  const auto protocol = MakeRandomProtocol(spec);
  BitString zeros(16);
  BitString ones;
  for (int i = 0; i < 16; ++i) ones.PushBack(true);
  for (int m = 0; m < 48; ++m) {
    zeros.PushBack(false);
    ones.PushBack(false);
    EXPECT_EQ(protocol->party(0).ChooseBeep(zeros),
              protocol->party(0).ChooseBeep(ones))
        << m;
  }
}

TEST(RandomProtocol, OutputDigestDetectsTranscriptCorruption) {
  Rng rng(5);
  const RandomProtocolSpec spec = SampleRandomProtocol(4, 40, 0.2, true, rng);
  const auto protocol = MakeRandomProtocol(spec);
  const BitString reference = ReferenceTranscript(*protocol);
  BitString corrupted = reference;
  corrupted.Set(17, !corrupted[17]);
  EXPECT_NE(TranscriptDigest(reference), TranscriptDigest(corrupted));
  EXPECT_EQ(protocol->party(0).ComputeOutput(reference)[0],
            TranscriptDigest(reference));
}

class RandomProtocolSimTest
    : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(RandomProtocolSimTest, RewindReconstructsArbitraryProtocols) {
  // The Theorem 1.2 quantifier, fuzz-style: the rewind scheme must
  // reconstruct pseudorandom protocols of any density and adaptivity.
  const auto [density, adaptive] = GetParam();
  Rng rng(600 + static_cast<int>(density * 100) + (adaptive ? 7 : 0));
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  int correct = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const RandomProtocolSpec spec =
        SampleRandomProtocol(10, 40, density, adaptive, rng);
    const auto protocol = MakeRandomProtocol(spec);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += !result.budget_exhausted() &&
               result.AllMatch(ReferenceTranscript(*protocol));
  }
  EXPECT_GE(correct, kTrials - 1)
      << "density=" << density << " adaptive=" << adaptive;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomProtocolSimTest,
    ::testing::Combine(::testing::Values(0.02, 0.1, 0.3, 0.7),
                       ::testing::Bool()));

TEST(RandomProtocol, ValidatesParameters) {
  Rng rng(6);
  EXPECT_THROW((void)SampleRandomProtocol(0, 10, 0.1, true, rng),
               std::invalid_argument);
  EXPECT_THROW((void)SampleRandomProtocol(2, 10, 1.5, true, rng),
               std::invalid_argument);
  EXPECT_THROW((void)MakeRandomProtocol(RandomProtocolSpec{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
