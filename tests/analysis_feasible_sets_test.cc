#include "analysis/feasible_sets.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "channel/one_sided.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(FeasibleSet, EmptyTranscriptAllowsEverything) {
  const auto family = MakeInputSetFamily(4);
  const std::vector<int> s = FeasibleSet(*family, 0, BitString());
  EXPECT_EQ(s.size(), 8u);
}

TEST(FeasibleSet, ZeroRoundExcludesMatchingInput) {
  // Trivial InputSet protocol: a 0 in round m rules out input m.
  const auto family = MakeInputSetFamily(3);  // universe 6
  const BitString pi = BitString::FromString("010");
  const std::vector<int> s = FeasibleSet(*family, 1, pi);
  // Rounds 0 and 2 were 0 -> inputs 0 and 2 infeasible; 1,3,4,5 remain.
  EXPECT_EQ(s, (std::vector<int>{1, 3, 4, 5}));
}

TEST(FeasibleSet, AllZeroTranscriptLeavesOnlyLateInputs) {
  const auto family = MakeInputSetFamily(3);
  const BitString pi = BitString::FromString("000000");
  const std::vector<int> s = FeasibleSet(*family, 0, pi);
  EXPECT_TRUE(s.empty());  // every input would have beeped somewhere
}

TEST(FeasibleSet, OnesNeverExclude) {
  const auto family = MakeInputSetFamily(3);
  const BitString pi = BitString::FromString("111111");
  const std::vector<int> s = FeasibleSet(*family, 2, pi);
  EXPECT_EQ(s.size(), 6u);
}

TEST(FeasibleSet, RepetitionProtocolExcludesPerLogicalRound) {
  const auto family = MakeInputSetFamily(2, 3);  // universe 4, r=3, T=12
  // First logical round reads 0 0 0; second reads 1 1 1 (partial pi).
  const BitString pi = BitString::FromString("000111");
  const std::vector<int> s = FeasibleSet(*family, 0, pi);
  EXPECT_EQ(s, (std::vector<int>{1, 2, 3}));
}

TEST(FeasibleSet, TrueInputIsAlwaysFeasibleInConsistentExecutions) {
  // Run the real protocol on a one-sided-up channel: the actual inputs
  // must survive in the feasible sets (0s certify silence, and the true
  // parties were indeed silent there).
  Rng rng(1);
  const OneSidedUpChannel channel(1.0 / 3.0);
  const int n = 6;
  const auto family = MakeInputSetFamily(n);
  for (int trial = 0; trial < 10; ++trial) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const ExecutionResult run = Execute(*protocol, channel, rng);
    const auto sets = AllFeasibleSets(*family, run.shared());
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(std::binary_search(sets[i].begin(), sets[i].end(),
                                     instance.inputs[i]))
          << "party " << i;
    }
  }
}

TEST(FeasibleSet, MoreZerosShrinkTheSet) {
  const auto family = MakeInputSetFamily(4);  // universe 8
  std::size_t prev = 9;
  for (int zeros = 0; zeros <= 8; ++zeros) {
    BitString pi;
    for (int m = 0; m < 8; ++m) pi.PushBack(m >= zeros);
    const std::vector<int> s = FeasibleSet(*family, 0, pi);
    EXPECT_EQ(s.size(), 8u - zeros);
    EXPECT_LT(s.size(), prev);
    prev = s.size();
  }
}

TEST(FeasibleSet, ValidatesArguments) {
  const auto family = MakeInputSetFamily(2);
  EXPECT_THROW((void)FeasibleSet(*family, 2, BitString()),
               std::invalid_argument);
  EXPECT_THROW((void)FeasibleSet(*family, 0, BitString(100)),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
