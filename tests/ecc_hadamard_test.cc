#include "ecc/hadamard.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ecc/code.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(HadamardCode, Dimensions) {
  const HadamardCode code(4);
  EXPECT_EQ(code.num_messages(), 16u);
  EXPECT_EQ(code.codeword_length(), 16u);
}

TEST(HadamardCode, RejectsBadParameters) {
  EXPECT_THROW(HadamardCode(0), std::invalid_argument);
  EXPECT_THROW(HadamardCode(21), std::invalid_argument);
}

TEST(HadamardCode, ZeroMessageIsAllZeros) {
  const HadamardCode code(3);
  EXPECT_EQ(code.Encode(0).PopCount(), 0u);
}

TEST(HadamardCode, NonzeroCodewordsAreBalanced) {
  const HadamardCode code(5);
  for (std::uint64_t m = 1; m < code.num_messages(); ++m) {
    EXPECT_EQ(code.Encode(m).PopCount(), code.codeword_length() / 2) << m;
  }
}

TEST(HadamardCode, PairwiseDistanceIsExactlyHalf) {
  const HadamardCode code(4);
  EXPECT_EQ(MinimumDistance(code), code.codeword_length() / 2);
}

TEST(HadamardCode, DecodeInvertsEncode) {
  const HadamardCode code(6);
  for (std::uint64_t m = 0; m < code.num_messages(); ++m) {
    EXPECT_EQ(code.Decode(code.Encode(m)), m);
  }
}

class HadamardNoiseTest : public ::testing::TestWithParam<int> {};

TEST_P(HadamardNoiseTest, CorrectsJustUnderQuarterLengthErrors) {
  const int k = GetParam();
  const HadamardCode code(k);
  const std::size_t radius = code.codeword_length() / 4 - 1;
  Rng rng(100 + k);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t msg = rng.UniformInt(code.num_messages());
    BitString word = code.Encode(msg);
    // Flip `radius` distinct random positions.
    std::vector<std::size_t> positions;
    while (positions.size() < radius) {
      const std::size_t p = rng.UniformInt(word.size());
      bool fresh = true;
      for (std::size_t q : positions) fresh = fresh && q != p;
      if (fresh) {
        positions.push_back(p);
        word.Set(p, !word[p]);
      }
    }
    EXPECT_EQ(code.Decode(word), msg) << "k=" << k << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(MessageSizes, HadamardNoiseTest,
                         ::testing::Values(4, 5, 6, 7, 8));

}  // namespace
}  // namespace noisybeeps
