#include "ecc/gf256.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace noisybeeps {
namespace {

using gf256::Add;
using gf256::Div;
using gf256::EvalPoly;
using gf256::Exp;
using gf256::Inv;
using gf256::Log;
using gf256::Mul;

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(Add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Add(7, 7), 0);
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(Mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, KnownProducts) {
  // x * x^7 = x^8 which reduces by 0x11d to 0x1d.
  EXPECT_EQ(Mul(0x02, 0x80), 0x1D);
  // x^2 * x^6 is the same element.
  EXPECT_EQ(Mul(0x04, 0x40), 0x1D);
  // (x+1)^2 = x^2 + 1 (Frobenius: squaring is linear in char 2).
  EXPECT_EQ(Mul(0x03, 0x03), 0x05);
}

TEST(Gf256, MultiplicationIsCommutativeAndAssociative) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 1; b < 256; b += 17) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(Mul(ua, ub), Mul(ub, ua));
      for (int c = 1; c < 256; c += 31) {
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(Mul(Mul(ua, ub), uc), Mul(ua, Mul(ub, uc)));
      }
    }
  }
}

TEST(Gf256, DistributivityOverAddition) {
  for (int a = 1; a < 256; a += 11) {
    for (int b = 0; b < 256; b += 19) {
      for (int c = 0; c < 256; c += 23) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(Mul(ua, Add(ub, uc)), Add(Mul(ua, ub), Mul(ua, uc)));
      }
    }
  }
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(Mul(ua, Inv(ua)), 1) << a;
  }
  EXPECT_THROW((void)Inv(0), std::invalid_argument);
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(Mul(Div(ua, ub), ub), ua);
    }
  }
  EXPECT_THROW((void)Div(1, 0), std::invalid_argument);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // alpha = 0x02 generates the multiplicative group: powers 0..254 are
  // distinct.
  bool seen[256] = {false};
  for (int p = 0; p < 255; ++p) {
    const std::uint8_t v = Exp(p);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "repeat at power " << p;
    seen[v] = true;
  }
  EXPECT_EQ(Exp(255), Exp(0));
  EXPECT_EQ(Exp(-1), Exp(254));
}

TEST(Gf256, LogInvertsExp) {
  for (int p = 0; p < 255; ++p) {
    EXPECT_EQ(Log(Exp(p)), p);
  }
  EXPECT_THROW((void)Log(0), std::invalid_argument);
}

TEST(Gf256, EvalPolyHorner) {
  // p(x) = 3 + 5x + x^2 at x = 2: 3 ^ Mul(5,2) ^ Mul(1,4).
  const std::uint8_t coeffs[] = {3, 5, 1};
  const std::uint8_t x = 2;
  const std::uint8_t expected =
      Add(Add(3, Mul(5, x)), Mul(1, Mul(x, x)));
  EXPECT_EQ(EvalPoly(coeffs, 3, x), expected);
}

TEST(Gf256, EvalPolyEmptyIsZero) {
  EXPECT_EQ(EvalPoly(nullptr, 0, 17), 0);
}

}  // namespace
}  // namespace noisybeeps
