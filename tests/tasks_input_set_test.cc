#include "tasks/input_set.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "protocol/executor.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(InputSet, SampleStaysInRange) {
  Rng rng(1);
  for (int n : {1, 2, 5, 33}) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    EXPECT_EQ(instance.num_parties(), n);
    EXPECT_EQ(instance.universe_size(), 2 * n);
    for (int x : instance.inputs) {
      EXPECT_GE(x, 0);
      EXPECT_LT(x, 2 * n);
    }
  }
}

TEST(InputSet, ExpectedOutputIsMembershipMask) {
  InputSetInstance instance;
  instance.inputs = {0, 3, 3, 5};  // n=4, universe 8
  const PartyOutput mask = InputSetExpectedOutput(instance);
  ASSERT_EQ(mask.size(), 1u);
  EXPECT_EQ(mask[0], (1u << 0) | (1u << 3) | (1u << 5));
}

TEST(InputSet, ExpectedOutputSpansMultipleWords) {
  InputSetInstance instance;
  instance.inputs.assign(40, 0);
  instance.inputs[1] = 79;  // universe 80 -> 2 words
  const PartyOutput mask = InputSetExpectedOutput(instance);
  ASSERT_EQ(mask.size(), 2u);
  EXPECT_EQ(mask[0], 1u);             // element 0
  EXPECT_EQ(mask[1], 1ull << 15);     // element 79
}

TEST(InputSet, TrivialProtocolTranscriptIsIndicator) {
  InputSetInstance instance;
  instance.inputs = {1, 4, 4};  // universe 6
  const auto protocol = MakeInputSetProtocol(instance);
  EXPECT_EQ(protocol->length(), 6);
  const BitString pi = ReferenceTranscript(*protocol);
  EXPECT_EQ(pi.ToString(), "010010");
}

TEST(InputSet, NoiselessExecutionIsCorrect) {
  Rng rng(2);
  const NoiselessChannel channel;
  for (int n : {1, 3, 8, 20}) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    EXPECT_TRUE(InputSetAllCorrect(instance, result.outputs)) << n;
  }
}

TEST(InputSet, RepeatedProtocolLengthScales) {
  InputSetInstance instance;
  instance.inputs = {0, 1};
  const auto protocol = MakeRepeatedInputSetProtocol(instance, 7);
  EXPECT_EQ(protocol->length(), 4 * 7);
}

TEST(InputSet, RepeatedProtocolNoiselessCorrect) {
  Rng rng(3);
  const NoiselessChannel channel;
  const InputSetInstance instance = SampleInputSet(6, rng);
  for (int r : {1, 2, 5}) {
    for (RoundDecision d :
         {RoundDecision::kMajority, RoundDecision::kAllOnes}) {
      const auto protocol = MakeRepeatedInputSetProtocol(instance, r, d);
      const ExecutionResult result = Execute(*protocol, channel, rng);
      EXPECT_TRUE(InputSetAllCorrect(instance, result.outputs));
    }
  }
}

TEST(InputSet, SingleRepetitionFailsUnderNoise) {
  // The headline phenomenon: the trivial protocol breaks immediately on a
  // one-sided 1/3 channel.
  Rng rng(4);
  const OneSidedUpChannel channel(1.0 / 3.0);
  int correct = 0;
  constexpr int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(16, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    correct += InputSetAllCorrect(instance, result.outputs);
  }
  // Pr[no flip in 32 rounds] = (2/3)^{~22 zero rounds} -- essentially 0.
  EXPECT_LE(correct, 2);
}

TEST(InputSet, HeavyRepetitionSurvivesNoise) {
  Rng rng(5);
  const OneSidedUpChannel channel(1.0 / 3.0);
  int correct = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(16, rng);
    // All-ones rule is the ML decision under one-sided-up noise.
    const auto protocol =
        MakeRepeatedInputSetProtocol(instance, 25, RoundDecision::kAllOnes);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    correct += InputSetAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, 28);
}

TEST(InputSet, AllCorrectDetectsWrongOutput) {
  InputSetInstance instance;
  instance.inputs = {0, 1};
  std::vector<PartyOutput> outputs(2, InputSetExpectedOutput(instance));
  EXPECT_TRUE(InputSetAllCorrect(instance, outputs));
  outputs[1][0] ^= 1;
  EXPECT_FALSE(InputSetAllCorrect(instance, outputs));
}

TEST(InputSetFamily, MatchesProtocolBehaviour) {
  const auto family = MakeInputSetFamily(4, 3);
  EXPECT_EQ(family->num_parties(), 4);
  EXPECT_EQ(family->num_inputs(), 8);
  EXPECT_EQ(family->length(), 24);
  // Party with input 2 beeps exactly in logical round 2 (rounds 6..8).
  const auto party = family->MakeParty(0, 2);
  BitString prefix;
  for (int m = 0; m < 24; ++m) {
    EXPECT_EQ(party->ChooseBeep(prefix), m / 3 == 2) << m;
    prefix.PushBack(false);
  }
}

TEST(InputSetFamily, ValidatesArguments) {
  const auto family = MakeInputSetFamily(3);
  EXPECT_THROW((void)family->MakeParty(3, 0), std::invalid_argument);
  EXPECT_THROW((void)family->MakeParty(0, 6), std::invalid_argument);
  EXPECT_THROW((void)MakeInputSetFamily(0), std::invalid_argument);
}

TEST(InputSet, RejectsOutOfRangeInputs) {
  InputSetInstance instance;
  instance.inputs = {5};  // universe is 2 for n=1
  EXPECT_THROW((void)MakeInputSetProtocol(instance), std::invalid_argument);
  EXPECT_THROW((void)InputSetExpectedOutput(instance), std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
