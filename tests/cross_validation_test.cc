// Cross-validation properties: independent components of the library that
// must agree with each other on shared ground.
#include <gtest/gtest.h>

#include "channel/noiseless.h"
#include "coding/owner_finding.h"
#include "coding/verification.h"
#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(CrossValidation, Algorithm1RecoversTheStaticSchedule) {
  // For a schedule-owned protocol, Algorithm 1's owner-finding (which
  // knows nothing about the schedule) must assign exactly the scheduled
  // owner to every 1 -- the dynamic and static ownership notions coincide.
  Rng rng(1);
  const NoiselessChannel channel;
  const int n = 6;
  const int k = 4;
  const BitExchangeInstance instance = SampleBitExchange(n, k, rng);
  const auto protocol = MakeBitExchangeProtocol(instance);
  const std::vector<int> schedule = BitExchangeSchedule(n, k);
  const BitString pi = ReferenceTranscript(*protocol);

  // Per-party beep history along the reference transcript.
  std::vector<BitString> beeped(n);
  BitString prefix;
  for (int m = 0; m < protocol->length(); ++m) {
    for (int i = 0; i < n; ++i) {
      beeped[i].PushBack(protocol->party(i).ChooseBeep(prefix));
    }
    prefix.PushBack(pi[m]);
  }

  const BeepCode code(protocol->length(), 6, 3);
  RoundEngine engine(channel, rng, n);
  const OwnerFindingResult found =
      FindOwners(engine, code, std::vector<BitString>(n, pi), beeped);
  for (int m = 0; m < protocol->length(); ++m) {
    if (pi[m]) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(found.owners[i][m], schedule[m]) << "round " << m;
      }
    }
  }
}

TEST(CrossValidation, FirstViolationIsMonotoneInFrom) {
  // Raising `from` can only push the first violation later (or leave it):
  // the scan ignores a prefix of potential violations.
  Rng rng(2);
  const InputSetInstance instance = SampleInputSet(6, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  BitString corrupted = ReferenceTranscript(*protocol);
  // Plant several corruptions.
  corrupted.Set(1, !corrupted[1]);
  corrupted.Set(5, !corrupted[5]);
  corrupted.Set(9, !corrupted[9]);
  const std::vector<int> owners(corrupted.size(), -1);
  for (int i = 0; i < 6; ++i) {
    std::size_t prev = 0;
    for (std::size_t from = 0; from <= corrupted.size(); ++from) {
      const std::size_t fv = FirstViolation(*protocol, i, corrupted, owners,
                                            NoiseRegime::kDownOnly, from);
      EXPECT_GE(fv, prev) << "party " << i << " from " << from;
      EXPECT_GE(fv, from);
      prev = fv;
    }
  }
}

TEST(CrossValidation, VerificationAcceptsExactlyTheReferenceContinuations) {
  // For every prefix p of the reference transcript, verification of that
  // prefix is clear at every party; any single bit flip in the prefix is
  // flagged by someone (with correct owners in play).
  Rng rng(3);
  const InputSetInstance instance = SampleInputSet(5, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const BitString reference = ReferenceTranscript(*protocol);
  // True owners: the (a) party with the matching input.
  std::vector<int> owners(reference.size(), -1);
  for (std::size_t m = 0; m < reference.size(); ++m) {
    if (reference[m]) {
      for (int i = 0; i < 5; ++i) {
        if (instance.inputs[i] == static_cast<int>(m)) {
          owners[m] = i;
          break;
        }
      }
    }
  }
  // Clean reference: no violations anywhere.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(FirstViolation(*protocol, i, reference, owners,
                             NoiseRegime::kTwoSided),
              reference.size());
  }
  // Every single-bit corruption is caught by at least one party.
  for (std::size_t m = 0; m < reference.size(); ++m) {
    BitString corrupted = reference;
    corrupted.Set(m, !corrupted[m]);
    bool caught = false;
    for (int i = 0; i < 5; ++i) {
      caught = caught ||
               FirstViolation(*protocol, i, corrupted, owners,
                              NoiseRegime::kTwoSided) <= m;
    }
    EXPECT_TRUE(caught) << "flip at round " << m;
  }
}

}  // namespace
}  // namespace noisybeeps
