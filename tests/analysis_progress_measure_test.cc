#include "analysis/progress_measure.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "channel/one_sided.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

constexpr double kEps = 1.0 / 3.0;

TEST(ClassifyRounds, TrivialProtocolClassesAreExact) {
  // n=3, universe 6, inputs {1, 4, 4}.  True transcript "010010".
  const auto family = MakeInputSetFamily(3);
  const std::vector<int> x{1, 4, 4};
  // Transcript with one noise flip: round 3 flipped 0 -> 1.
  const BitString pi = BitString::FromString("010110");
  const RoundClasses classes = ClassifyRounds(*family, x, pi);
  EXPECT_TRUE(classes.consistent);
  EXPECT_EQ(classes.a0, 3u);        // rounds 0, 2, 5
  EXPECT_EQ(classes.a0_prime, 1u);  // round 3 (nobody beeped, pi=1)
  EXPECT_EQ(classes.a_multi, 1u);   // round 4 (parties 1 and 2)
  EXPECT_EQ(classes.a_single[0], 1u);  // round 1, party 0 alone
  EXPECT_EQ(classes.a_single[1], 0u);
  EXPECT_EQ(classes.a_single[2], 0u);
}

TEST(ClassifyRounds, BeeperInZeroRoundIsInconsistent) {
  const auto family = MakeInputSetFamily(3);
  const std::vector<int> x{1, 4, 4};
  const BitString pi = BitString::FromString("000010");  // round 1 should be 1
  const RoundClasses classes = ClassifyRounds(*family, x, pi);
  EXPECT_FALSE(classes.consistent);
  EXPECT_EQ(Log2ProbPiGivenX(classes, kEps),
            -std::numeric_limits<double>::infinity());
}

TEST(Log2ProbPiGivenX, ClosedFormMatchesHandComputation) {
  const auto family = MakeInputSetFamily(3);
  const std::vector<int> x{1, 4, 4};
  const BitString pi = BitString::FromString("010110");
  const RoundClasses classes = ClassifyRounds(*family, x, pi);
  // 3 silent zeros (prob 2/3 each) and 1 silent one (prob 1/3).
  const double expected = 3 * std::log2(2.0 / 3.0) + std::log2(1.0 / 3.0);
  EXPECT_NEAR(Log2ProbPiGivenX(classes, kEps), expected, 1e-12);
}

TEST(Log2ProbPiGivenX, SumsToOneOverAllTranscripts) {
  // For fixed x, summing Pr(pi | x) over all 2^T transcripts must give 1.
  const auto family = MakeInputSetFamily(2);  // universe 4, T = 4
  const std::vector<int> x{0, 2};
  double total = 0.0;
  for (unsigned mask = 0; mask < 16; ++mask) {
    BitString pi;
    for (int m = 0; m < 4; ++m) pi.PushBack((mask >> m) & 1);
    const RoundClasses classes = ClassifyRounds(*family, x, pi);
    const double lp = Log2ProbPiGivenX(classes, kEps);
    if (std::isfinite(lp)) total += std::exp2(lp);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ComputeZeta, AgreesWithBruteForceOnTinyInstance) {
  // Brute-force zeta: Z = sum_{i in G} avg_{y in S^i} Pr(pi | x^{i=y}),
  // computed here directly from Log2ProbPiGivenX on modified inputs.
  const auto family = MakeInputSetFamily(3);
  const std::vector<int> x{1, 4, 0};
  const BitString pi = BitString::FromString("110011");
  const ZetaResult zeta = ComputeZeta(*family, x, pi, kEps);
  ASSERT_TRUE(std::isfinite(zeta.log2_zeta));

  // Independent brute force.
  const RoundClasses base = ClassifyRounds(*family, x, pi);
  const double log2_px = Log2ProbPiGivenX(base, kEps);
  double z = 0.0;
  for (int i : zeta.good) {
    // Feasible inputs of party i.
    double avg = 0.0;
    int count = 0;
    for (int y = 0; y < 6; ++y) {
      // Membership in S^i: replay on zero rounds.
      std::vector<int> xs = x;
      xs[i] = y;
      const RoundClasses cls = ClassifyRounds(*family, xs, pi);
      // y in S^i iff party i alone never beeps on zero rounds; since
      // other parties are consistent with pi by assumption, consistency
      // of the modified vector is the same condition.
      if (cls.consistent) {
        avg += std::exp2(Log2ProbPiGivenX(cls, kEps) - log2_px);
        ++count;
      }
    }
    ASSERT_GT(count, 0);
    z += avg / count;
  }
  EXPECT_NEAR(std::exp2(-zeta.log2_zeta), z, 1e-9);
}

TEST(ComputeZeta, InconsistentPairGivesZero) {
  const auto family = MakeInputSetFamily(3);
  const std::vector<int> x{1, 4, 4};
  const BitString pi = BitString::FromString("000000");
  const ZetaResult zeta = ComputeZeta(*family, x, pi, kEps);
  EXPECT_EQ(zeta.zeta, 0.0);
}

TEST(TheoremC2, BoundFormula) {
  // (4/n) * 3^{4T/n} at eps = 1/3.
  EXPECT_NEAR(TheoremC2Bound(16, 0, kEps), 0.25, 1e-12);
  EXPECT_NEAR(TheoremC2Bound(16, 16, kEps), 0.25 * std::pow(3.0, 4.0),
              1e-9);
}

TEST(TheoremC2, HoldsOnRealExecutions) {
  // The theorem: for every (x, pi) with Pr(x,pi) > 0 where the event G
  // holds, zeta <= (4/n) * 3^{4T/n}.  Check on executions of the trivial
  // protocol over the one-sided channel.
  Rng rng(7);
  const OneSidedUpChannel channel(kEps);
  const int n = 8;
  const auto family = MakeInputSetFamily(n);
  const double bound = TheoremC2Bound(n, 2 * n, kEps);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const ExecutionResult run = Execute(*protocol, channel, rng);
    const ZetaResult zeta =
        ComputeZeta(*family, instance.inputs, run.shared(), kEps);
    if (!zeta.event_good) continue;
    ++checked;
    EXPECT_LE(zeta.zeta, bound + 1e-9) << "trial " << trial;
  }
  EXPECT_GT(checked, 5);  // the event G must not be vacuous
}

TEST(TheoremC2, RepetitionProtocolAlsoBounded) {
  Rng rng(8);
  const OneSidedUpChannel channel(kEps);
  const int n = 6;
  const int r = 3;
  const auto family = MakeInputSetFamily(n, r);
  const double bound = TheoremC2Bound(n, 2 * n * r, kEps);
  for (int trial = 0; trial < 15; ++trial) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol = MakeRepeatedInputSetProtocol(instance, r);
    const ExecutionResult run = Execute(*protocol, channel, rng);
    const ZetaResult zeta =
        ComputeZeta(*family, instance.inputs, run.shared(), kEps);
    if (!zeta.event_good) continue;
    EXPECT_LE(zeta.zeta, bound + 1e-9);
  }
}

TEST(ZetaResult, GoodSetMatchesGoodPlayersModule) {
  Rng rng(9);
  const OneSidedUpChannel channel(kEps);
  const int n = 8;
  const auto family = MakeInputSetFamily(n);
  const InputSetInstance instance = SampleInputSet(n, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const ExecutionResult run = Execute(*protocol, channel, rng);
  const ZetaResult zeta =
      ComputeZeta(*family, instance.inputs, run.shared(), kEps);
  // zeta.good must be consistent with its definition: unique input and
  // feasible set > sqrt(n).
  for (int i : zeta.good) {
    int same = 0;
    for (int v : instance.inputs) same += v == instance.inputs[i];
    EXPECT_EQ(same, 1);
  }
}

}  // namespace
}  // namespace noisybeeps
