#include "failpoint/fail_plan.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace noisybeeps::failpoint {
namespace {

TEST(FailPlan, DefaultIsEmpty) {
  const FailPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.seed(), 0u);
  EXPECT_EQ(plan.ToString(), "");
}

TEST(FailPlan, BuilderChainsAndRecordsSpecs) {
  FailPlan plan(7);
  plan.Fail(FailOp::kRename, 0)
      .Enospc(1, 3, 0.5)
      .Torn(2, 2, 0.25)
      .Crash(FailOp::kSync, 4)
      .Truncate(0, 0, 0.75)
      .Corrupt(0, 0, 3)
      .Latency(FailOp::kWrite, 0, 9, 20);
  ASSERT_EQ(plan.specs().size(), 7u);
  EXPECT_EQ(plan.seed(), 7u);

  const FailSpec& fail = plan.specs()[0];
  EXPECT_EQ(fail.kind, FailKind::kFail);
  EXPECT_EQ(fail.op, FailOp::kRename);
  EXPECT_EQ(fail.first_hit, 0);
  EXPECT_EQ(fail.last_hit, FailSpec::kNoLastHit);
  EXPECT_TRUE(fail.ActiveAt(0));
  EXPECT_TRUE(fail.ActiveAt(1'000'000'000));

  const FailSpec& enospc = plan.specs()[1];
  EXPECT_EQ(enospc.kind, FailKind::kEnospc);
  EXPECT_EQ(enospc.op, FailOp::kWrite);  // implied by the kind
  EXPECT_DOUBLE_EQ(enospc.param, 0.5);
  EXPECT_TRUE(enospc.ActiveAt(3));
  EXPECT_FALSE(enospc.ActiveAt(4));
  EXPECT_FALSE(enospc.ActiveAt(0));

  EXPECT_EQ(plan.specs()[4].op, FailOp::kRead);  // truncate implies read
  EXPECT_EQ(plan.specs()[5].op, FailOp::kRead);  // corrupt implies read
  EXPECT_DOUBLE_EQ(plan.specs()[5].param, 3.0);
  EXPECT_DOUBLE_EQ(plan.specs()[6].param, 20.0);
}

TEST(FailPlan, OpAndKindNamesRoundTrip) {
  for (FailOp op : {FailOp::kRead, FailOp::kWrite, FailOp::kSync,
                    FailOp::kRename, FailOp::kRemove}) {
    EXPECT_EQ(ParseFailOp(FailOpName(op)), op);
  }
  for (FailKind kind :
       {FailKind::kFail, FailKind::kEnospc, FailKind::kTorn, FailKind::kCrash,
        FailKind::kTruncate, FailKind::kCorrupt, FailKind::kLatency}) {
    EXPECT_EQ(ParseFailKind(FailKindName(kind)), kind);
  }
  EXPECT_THROW((void)ParseFailOp("mmap"), std::invalid_argument);
  EXPECT_THROW((void)ParseFailKind("bitrot"), std::invalid_argument);
}

TEST(FailPlan, BuilderRejectsBadArguments) {
  FailPlan plan;
  EXPECT_THROW(plan.Fail(FailOp::kRead, -1), std::invalid_argument);
  EXPECT_THROW(plan.Fail(FailOp::kRead, 10, 9), std::invalid_argument);
  EXPECT_THROW(plan.Enospc(0, 0, 1.5), std::invalid_argument);
  EXPECT_THROW(plan.Torn(0, 0, -0.1), std::invalid_argument);
  EXPECT_THROW(plan.Corrupt(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(plan.Latency(FailOp::kSync, 0, 0, -1), std::invalid_argument);
  EXPECT_TRUE(plan.empty());  // failed builder calls add nothing
}

TEST(FailPlan, ParseToStringRoundTrips) {
  const char* kPlans[] = {
      "",
      "fail:rename@0",
      "fail:write@0-*",
      "enospc:write@1-3:0.5",
      "torn:write@2:0.25",
      "crash:sync@4",
      "truncate:read@0:0.75",
      "corrupt:read@0:3",
      "latency:write@0-9:20",
      "crash:write@2;torn:write@0-4:0.5;corrupt:read@0:3",
  };
  for (const char* text : kPlans) {
    const FailPlan plan = FailPlan::Parse(text, 42);
    EXPECT_EQ(FailPlan::Parse(plan.ToString(), 42), plan) << text;
  }
}

TEST(FailPlan, ParseAcceptsGrammarVariants) {
  // A bare hit is that one hit -- unlike fault_plan.h's rounds, a single
  // strike is the common case for I/O faults.
  const FailPlan one = FailPlan::Parse("fail:read@2");
  EXPECT_EQ(one.specs()[0].first_hit, 2);
  EXPECT_EQ(one.specs()[0].last_hit, 2);
  // Forever is spelled explicitly: '-*' or a trailing '-'.
  EXPECT_EQ(FailPlan::Parse("fail:read@2-*").specs()[0].last_hit,
            FailSpec::kNoLastHit);
  EXPECT_EQ(FailPlan::Parse("fail:read@2-").specs()[0],
            FailPlan::Parse("fail:read@2-*").specs()[0]);
  // Empty specs between separators are skipped.
  EXPECT_EQ(FailPlan::Parse("fail:read@0;;crash:sync@1").specs().size(), 2u);
  // The seed rides along.
  EXPECT_EQ(FailPlan::Parse("corrupt:read@0:2", 99).seed(), 99u);
}

// Table-driven malformed-grammar coverage.
TEST(FailPlan, ParseRejectsMalformedInput) {
  const struct {
    const char* label;
    const char* text;
  } kCases[] = {
      {"unknown kind", "bitrot:read@0"},
      {"unknown op", "fail:mmap@0"},
      {"missing op", "fail:@0"},
      {"missing window", "fail:read"},
      {"at before colon", "fail@0:read"},
      {"non-numeric hit", "fail:read@x"},
      {"negative-looking hit", "fail:read@-1"},
      {"overflowing hit", "fail:read@99999999999999999999"},
      {"window ends before start", "fail:read@10-9"},
      {"param on fail", "fail:read@0:0.5"},
      {"param on crash", "crash:write@0:0.5"},
      {"enospc without param", "enospc:write@0"},
      {"truncate without param", "truncate:read@0"},
      {"enospc on a read", "enospc:read@0:0.5"},
      {"torn on a rename", "torn:rename@0:0.5"},
      {"truncate on a write", "truncate:write@0:0.5"},
      {"corrupt on a sync", "corrupt:sync@0:2"},
      {"fraction above one", "enospc:write@0:1.5"},
      {"fraction not a number", "torn:write@0:x"},
      {"fractional flip count", "corrupt:read@0:2.5"},
      {"zero flips", "corrupt:read@0:0"},
      {"fractional millis", "latency:write@0:1.5"},
  };
  for (const auto& c : kCases) {
    EXPECT_THROW((void)FailPlan::Parse(c.text), std::invalid_argument)
        << c.label;
  }
}

TEST(FailPlan, CsvRoundTrips) {
  FailPlan plan(9);
  plan.Crash(FailOp::kWrite, 2)
      .Torn(0, 4, 0.5)
      .Corrupt(0, 0, 3)
      .Latency(FailOp::kRemove, 1, 1, 5);
  std::ostringstream os;
  WriteFailPlanCsv(plan, os);
  std::istringstream is(os.str());
  EXPECT_EQ(ReadFailPlanCsv(is, 9), plan);
}

TEST(FailPlan, CsvFormat) {
  FailPlan plan;
  plan.Fail(FailOp::kRename, 0, 0).Enospc(1, FailSpec::kNoLastHit, 0.5);
  std::ostringstream os;
  WriteFailPlanCsv(plan, os);
  EXPECT_EQ(os.str(),
            "kind,op,first_hit,last_hit,param\n"
            "fail,rename,0,0,0\n"
            "enospc,write,1,*,0.5\n");
}

TEST(FailPlan, CsvRejectsMalformedInput) {
  const struct {
    const char* label;
    const char* csv;
  } kCases[] = {
      {"empty input", ""},
      {"wrong header", "kind,op,first,last,param\n"},
      {"too few cells", "kind,op,first_hit,last_hit,param\n"
                        "fail,read,0,*\n"},
      {"too many cells", "kind,op,first_hit,last_hit,param\n"
                         "fail,read,0,*,0,extra\n"},
      {"unknown kind", "kind,op,first_hit,last_hit,param\n"
                       "bitrot,read,0,*,0\n"},
      {"unknown op", "kind,op,first_hit,last_hit,param\n"
                     "fail,mmap,0,*,0\n"},
      {"non-numeric hit", "kind,op,first_hit,last_hit,param\n"
                          "fail,read,x,*,0\n"},
      {"window ends before start", "kind,op,first_hit,last_hit,param\n"
                                   "fail,read,10,9,0\n"},
      {"kind/op mismatch", "kind,op,first_hit,last_hit,param\n"
                           "truncate,write,0,*,0.5\n"},
      {"bad fraction", "kind,op,first_hit,last_hit,param\n"
                       "enospc,write,0,*,2.0\n"},
  };
  for (const auto& c : kCases) {
    std::istringstream is(c.csv);
    EXPECT_THROW((void)ReadFailPlanCsv(is), std::invalid_argument)
        << c.label;
  }
}

}  // namespace
}  // namespace noisybeeps::failpoint
