// Behavior of the individual nblint rules (stage two of the checker).
// Each rule runs through RunRule, i.e. over the real model with the rule's
// registered severity but without suppression processing.
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace noisybeeps::lint {
namespace {

SourceFile Header(std::string path, std::string body) {
  return SourceFile{std::move(path), std::move(body)};
}

std::vector<Finding> RunRuleId(const char* id,
                         const std::vector<SourceFile>& files) {
  const Rule* rule = FindRule(id);
  if (rule == nullptr) {
    ADD_FAILURE() << "no such rule: " << id;
    return {};
  }
  return RunRule(*rule, files);
}

// --- header-guard ----------------------------------------------------------

constexpr char kGoodHeader[] =
    "#ifndef NOISYBEEPS_FOO_BAR_H_\n"
    "#define NOISYBEEPS_FOO_BAR_H_\n"
    "int f();\n"
    "#endif  // NOISYBEEPS_FOO_BAR_H_\n";

TEST(LintHeaderGuard, AcceptsCanonicalGuard) {
  EXPECT_TRUE(
      RunRuleId("header-guard", {Header("src/foo/bar.h", kGoodHeader)}).empty());
}

TEST(LintHeaderGuard, FlagsWrongGuardName) {
  const std::string body =
      "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n";
  const auto findings = RunRuleId("header-guard", {Header("src/foo/bar.h", body)});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "header-guard");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("NOISYBEEPS_FOO_BAR_H_"),
            std::string::npos);
}

TEST(LintHeaderGuard, FlagsMissingGuard) {
  const auto findings =
      RunRuleId("header-guard", {Header("src/foo/bar.h", "int f();\n")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "header-guard");
}

TEST(LintHeaderGuard, FlagsMismatchedDefine) {
  const std::string body =
      "#ifndef NOISYBEEPS_FOO_BAR_H_\n#define NOISYBEEPS_OTHER_H_\n#endif\n";
  const auto findings = RunRuleId("header-guard", {Header("src/foo/bar.h", body)});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintHeaderGuard, IgnoresNonSrcFiles) {
  EXPECT_TRUE(
      RunRuleId("header-guard", {Header("tools/x.h", "int f();\n")}).empty());
  EXPECT_TRUE(
      RunRuleId("header-guard", {Header("src/foo/bar.cc", "int f() { return 1; }\n")})
          .empty());
}

// --- banned-random ---------------------------------------------------------

TEST(LintBannedRandom, FlagsStdRandAndFriends) {
  const std::string body =
      "#include <random>\n"
      "int a() { return std::rand(); }\n"
      "std::mt19937 gen;\n"
      "int b() { return rand(); }\n";
  const auto findings =
      RunRuleId("banned-random", {Header("src/foo/bar.cc", body)});
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].line, 3);
  EXPECT_EQ(findings[3].line, 4);
  for (const Finding& f : findings) EXPECT_EQ(f.rule_id, "banned-random");
}

TEST(LintBannedRandom, ExemptsRngCc) {
  const std::string body = "#include <random>\nstd::mt19937 gen;\n";
  EXPECT_TRUE(
      RunRuleId("banned-random", {Header("src/util/rng.cc", body)}).empty());
}

TEST(LintBannedRandom, IgnoresCommentsStringsAndSubstrings) {
  const std::string body =
      "// std::rand is banned\n"
      "const char* msg = \"std::rand\";\n"
      "int operand = 3;\n"
      "int brand = operand;\n";
  EXPECT_TRUE(
      RunRuleId("banned-random", {Header("src/foo/bar.cc", body)}).empty());
}

TEST(LintBannedRandom, BareRandNeedsCallParens) {
  // A variable merely NAMED rand is legal; calling rand() is not.
  EXPECT_TRUE(RunRuleId("banned-random",
                  {Header("src/foo/bar.cc", "int rand = 3; int y = rand;\n")})
                  .empty());
  EXPECT_EQ(
      RunRuleId("banned-random", {Header("src/foo/bar.cc", "int y = rand();\n")})
          .size(),
      1u);
}

TEST(LintBannedRandom, MemberAccessOnBannedTypeStillFires) {
  // std::mt19937::result_type is still a dependency on the banned engine.
  const auto findings =
      RunRuleId("banned-random",
          {Header("src/foo/bar.cc", "using T = std::mt19937::result_type;\n")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("std::mt19937"), std::string::npos);
}

// --- raw-thread ------------------------------------------------------------

TEST(LintRawThread, FlagsThreadSpawnsOutsideParallelH) {
  const std::string body =
      "#include <thread>\n"
      "void f() { std::thread t([]{}); t.join(); }\n"
      "void g() { auto fut = std::async([]{}); }\n";
  const auto findings = RunRuleId("raw-thread", {Header("src/foo/bar.cc", body)});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "raw-thread");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
}

TEST(LintRawThread, ExemptsParallelHAndConcurrencyQueries) {
  const std::string spawn = "void f() { std::thread t([]{}); t.join(); }\n";
  EXPECT_TRUE(
      RunRuleId("raw-thread", {Header("src/util/parallel.h", spawn)}).empty());
  // Asking how many cores exist spawns nothing.
  const std::string query =
      "int n() { return (int)std::thread::hardware_concurrency(); }\n";
  EXPECT_TRUE(
      RunRuleId("raw-thread", {Header("src/foo/bar.cc", query)}).empty());
}

// --- checkpoint-atomicity --------------------------------------------------

TEST(LintCheckpointAtomicity, FlagsDirectCheckpointStreamWrites) {
  const std::string body =
      "void Save(const std::string& checkpoint_path) {\n"
      "  std::ofstream out(checkpoint_path, std::ios::binary);\n"
      "  std::ofstream raw(\"run.nbckpt\");\n"
      "}\n";
  const auto findings =
      RunRuleId("checkpoint-atomicity", {Header("tools/sweep.cc", body)});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "checkpoint-atomicity");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_NE(findings[0].message.find("WriteCheckpointAtomic"),
            std::string::npos);
}

TEST(LintCheckpointAtomicity, ExemptsResilienceModuleAndTests) {
  const std::string body =
      "void W(const std::string& p) { std::ofstream out(p + \".ckpt\"); }\n";
  EXPECT_TRUE(RunRuleId("checkpoint-atomicity",
                  {Header("src/resilience/checkpoint.cc", body)})
                  .empty());
  // Negative tests write deliberately corrupt checkpoint files.
  EXPECT_TRUE(RunRuleId("checkpoint-atomicity",
                  {Header("tests/resilience_checkpoint_test.cc", body)})
                  .empty());
}

TEST(LintCheckpointAtomicity, IgnoresUnrelatedStreamsAndComments) {
  // ofstream writes of non-checkpoint files are fine...
  const std::string csv = "std::ofstream out(\"results.csv\");\n";
  EXPECT_TRUE(
      RunRuleId("checkpoint-atomicity", {Header("bench/b.cc", csv)}).empty());
  // ...as is merely TALKING about checkpoints next to an ofstream.
  const std::string comment =
      "std::ofstream out(path);  // not a checkpoint: plain CSV\n";
  EXPECT_TRUE(
      RunRuleId("checkpoint-atomicity", {Header("bench/b.cc", comment)}).empty());
  // And "ofstream" inside an identifier is not the stream type.
  const std::string fake = "my_std__ofstream_checkpoint(path);\n";
  EXPECT_TRUE(
      RunRuleId("checkpoint-atomicity", {Header("bench/b.cc", fake)}).empty());
}

// --- include-cycle ---------------------------------------------------------

TEST(LintIncludeCycle, AcceptsAcyclicModuleGraph) {
  const std::vector<SourceFile> files = {
      Header("src/util/a.h", "int a();\n"),
      Header("src/ecc/b.h", "#include \"util/a.h\"\n"),
      Header("src/coding/c.h",
             "#include \"ecc/b.h\"\n#include \"util/a.h\"\n"),
  };
  EXPECT_TRUE(RunRuleId("include-cycle", files).empty());
}

TEST(LintIncludeCycle, DetectsSeededCycle) {
  const std::vector<SourceFile> files = {
      Header("src/util/a.h", "#include \"ecc/b.h\"\n"),
      Header("src/ecc/b.h", "#include \"util/a.h\"\n"),
  };
  const auto findings = RunRuleId("include-cycle", files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "include-cycle");
  EXPECT_NE(findings[0].message.find("->"), std::string::npos);
}

TEST(LintIncludeCycle, IntraModuleIncludesAreFine) {
  const std::vector<SourceFile> files = {
      Header("src/util/a.h", "#include \"util/b.h\"\n"),
      Header("src/util/b.h", "#include \"util/c.h\"\n"),
      Header("src/util/c.h", "int c();\n"),
  };
  EXPECT_TRUE(RunRuleId("include-cycle", files).empty());
}

// --- layering ---------------------------------------------------------------

TEST(LintLayering, AcceptsTheIntendedGraph) {
  const std::vector<SourceFile> files = {
      Header("src/fault/fault_plan.h", "#include \"util/require.h\"\n"),
      Header("src/fault/injection.h",
             "#include \"channel/channel.h\"\n"
             "#include \"fault/fault_plan.h\"\n"
             "#include \"protocol/round_engine.h\"\n"),
      Header("src/coding/simulator.h", "#include \"fault/fault_plan.h\"\n"),
      Header("src/analysis/budget.h", "#include \"tasks/input_set.h\"\n"),
      Header("bench/bench_faults.cc", "#include \"fault/injection.h\"\n"),
      Header("tools/nbsim.cc", "#include \"fault/fault_plan.h\"\n"),
      Header("tests/fault_plan_test.cc",
             "#include \"fault/fault_plan.h\"\n"),
  };
  EXPECT_TRUE(RunRuleId("layering", files).empty());
}

TEST(LintLayering, FlagsFaultReachingUpIntoCoding) {
  const std::vector<SourceFile> files = {
      Header("src/fault/injection.h", "#include \"coding/simulator.h\"\n"),
  };
  const auto findings = RunRuleId("layering", files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "layering");
  EXPECT_EQ(findings[0].file, "src/fault/injection.h");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("coding"), std::string::npos);
}

TEST(LintLayering, FlagsCoreDependingBackOnFault) {
  const std::vector<SourceFile> files = {
      Header("src/protocol/executor.h", "#include \"fault/injection.h\"\n"),
      Header("src/channel/channel.h",
             "int x;\n#include \"fault/fault_plan.h\"\n"),
      Header("src/analysis/budget.h", "#include \"fault/fault_plan.h\"\n"),
  };
  const auto findings = RunRuleId("layering", files);
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule_id, "layering");
  }
  // The second file's offending include sits on line 2.
  const auto channel = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.file == "src/channel/channel.h"; });
  ASSERT_NE(channel, findings.end());
  EXPECT_EQ(channel->line, 2);
}

TEST(LintLayering, RestrictedImportOutsideTheAllowedDirs) {
  // examples/ is not among the directories allowed to reach fault/.
  const auto findings = RunRuleId(
      "layering",
      {Header("examples/demo.cc", "#include \"fault/fault_plan.h\"\n")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("fault"), std::string::npos);
}

TEST(LintLayering, UnknownModuleMustJoinTheTable) {
  const auto findings =
      RunRuleId("layering", {Header("src/viz/plot.h", "int p();\n")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("layer table"), std::string::npos);
}

TEST(LintLayering, IgnoresCommentedIncludesAndSystemHeaders) {
  const std::vector<SourceFile> files = {
      Header("src/protocol/executor.h",
             "// #include \"fault/injection.h\"\n#include <vector>\n"),
      Header("src/fault/fault_plan.cc",
             "#include <string>\n// see coding/simulator.h for the verdict\n"),
  };
  EXPECT_TRUE(RunRuleId("layering", files).empty());
}

// --- require-precondition --------------------------------------------------

constexpr char kWidgetHeader[] =
    "#ifndef NOISYBEEPS_FOO_WIDGET_H_\n"
    "#define NOISYBEEPS_FOO_WIDGET_H_\n"
    "class Widget {\n"
    " public:\n"
    "  // Precondition: 0 <= eps < 1/2.\n"
    "  explicit Widget(double eps);\n"
    "};\n"
    "// Preconditions: n >= 1.\n"
    "Widget MakeWidget(int n);\n"
    "#endif  // NOISYBEEPS_FOO_WIDGET_H_\n";

TEST(LintRequire, PassesWhenDefinitionsCheck) {
  const std::string cc =
      "#include \"foo/widget.h\"\n"
      "Widget::Widget(double eps) { NB_REQUIRE(eps >= 0, \"eps\"); }\n"
      "Widget MakeWidget(int n) {\n"
      "  NB_REQUIRE(n >= 1, \"n\");\n"
      "  return Widget(0.1);\n"
      "}\n";
  const std::vector<SourceFile> files = {
      Header("src/foo/widget.h", kWidgetHeader),
      Header("src/foo/widget.cc", cc)};
  EXPECT_TRUE(RunRuleId("require-precondition", files).empty());
}

TEST(LintRequire, FlagsUncheckedConstructorAndFactory) {
  const std::string cc =
      "#include \"foo/widget.h\"\n"
      "Widget::Widget(double eps) { (void)eps; }\n"
      "Widget MakeWidget(int n) { (void)n; return Widget(0.1); }\n";
  const std::vector<SourceFile> files = {
      Header("src/foo/widget.h", kWidgetHeader),
      Header("src/foo/widget.cc", cc)};
  const auto findings = RunRuleId("require-precondition", files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "require-precondition");
  EXPECT_EQ(findings[0].line, 5);  // the ctor's Precondition comment
  EXPECT_NE(findings[0].message.find("Widget"), std::string::npos);
  EXPECT_EQ(findings[1].line, 8);  // the factory's Precondition comment
}

TEST(LintRequire, UndocumentedFunctionsAreNotRequired) {
  const std::string header =
      "class Plain {\n public:\n  explicit Plain(int x);\n};\n";
  const std::string cc = "Plain::Plain(int x) { (void)x; }\n";
  const std::vector<SourceFile> files = {
      Header("src/foo/plain.h", header), Header("src/foo/plain.cc", cc)};
  EXPECT_TRUE(RunRuleId("require-precondition", files).empty());
}

TEST(LintRequire, FindsHeaderOnlyDefinitions) {
  const std::string header =
      "class Inline {\n public:\n"
      "  // Precondition: x > 0.\n"
      "  explicit Inline(int x) { (void)x; }\n"
      "};\n";
  const auto findings =
      RunRuleId("require-precondition", {Header("src/foo/inline.h", header)});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "require-precondition");
}

TEST(LintRequire, CommentAboveAMemberVariableDoesNotMisattach) {
  // The Precondition comment documents a member DATUM; the next recorded
  // function (the ctor further down) must not inherit it.
  const std::string header =
      "class Holder {\n public:\n"
      "  // Precondition: callers keep eps_ in range.\n"
      "  double eps_ = 0.0;\n"
      "  explicit Holder(int x) { (void)x; }\n"
      "};\n";
  EXPECT_TRUE(
      RunRuleId("require-precondition", {Header("src/foo/holder.h", header)})
          .empty());
}

// --- channel-hot-path ------------------------------------------------------

TEST(LintChannelHotPath, FlagsPerSampleFlipsInsideDeliver) {
  const std::string body =
      "void Foo::Deliver(int n, std::span<std::uint8_t> r, Rng& rng) const {\n"
      "  const bool flip = rng.UniformDouble() < eps_;\n"
      "  const bool again = rng.Bernoulli(eps_);\n"
      "  FillShared(r, flip != again);\n"
      "}\n";
  const auto findings =
      RunRuleId("channel-hot-path", {Header("src/channel/foo.cc", body)});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "channel-hot-path");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_NE(findings[0].message.find("BernoulliSampler"), std::string::npos);
}

TEST(LintChannelHotPath, PrecomputedSamplerDrawsAreClean) {
  const std::string body =
      "void Foo::Deliver(int n, std::span<std::uint8_t> r, Rng& rng) const {\n"
      "  // Bernoulli in a comment is fine; so is the sampler itself.\n"
      "  FillShared(r, (n > 0) != noise_.Sample(rng));\n"
      "}\n"
      "Foo::Foo(double eps) : noise_(BernoulliSampler(eps)) {}\n";
  EXPECT_TRUE(
      RunRuleId("channel-hot-path", {Header("src/channel/foo.cc", body)}).empty());
}

TEST(LintChannelHotPath, OnlyChannelSourcesAreInScope) {
  // Elsewhere a direct Bernoulli draw is legitimate (setup code, tests,
  // protocols) -- the rule polices the Monte Carlo inner loop only.
  const std::string body =
      "void Deliver(int n, std::span<std::uint8_t> r, Rng& rng) {\n"
      "  r[0] = rng.Bernoulli(0.5) ? 1 : 0;\n"
      "}\n";
  EXPECT_TRUE(
      RunRuleId("channel-hot-path", {Header("src/protocol/relay.cc", body)})
          .empty());
  EXPECT_TRUE(
      RunRuleId("channel-hot-path", {Header("tests/foo_test.cc", body)}).empty());
}

TEST(LintChannelHotPath, DeclarationsAndOtherFunctionsAreSkipped) {
  // A pure declaration has no body to scan, draws outside Deliver are out
  // of scope, and DeliverShared is a different identifier.
  const std::string body =
      "void Deliver(int n, std::span<std::uint8_t> r, Rng& rng) const "
      "override;\n"
      "bool Warmup(Rng& rng) { return rng.Bernoulli(0.5); }\n"
      "bool DeliverShared(int n, Rng& rng) { return rng.Bernoulli(eps_); }\n";
  EXPECT_TRUE(
      RunRuleId("channel-hot-path", {Header("src/channel/foo.h", body)}).empty());
}

// --- rng-stream-discipline -------------------------------------------------

TEST(LintRngDiscipline, FlagsByValueRngParameters) {
  const std::string body =
      "#include \"util/rng.h\"\n"
      "void RunRuleId(Rng rng);\n"
      "int Draw(int n, const Rng r2) { return n; }\n";
  const auto findings =
      RunRuleId("rng-stream-discipline", {Header("src/tasks/a.cc", body)});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_NE(findings[0].message.find("by value"), std::string::npos);
}

TEST(LintRngDiscipline, ReferencesAndPointersAreClean) {
  const std::string body =
      "void A(Rng& rng);\n"
      "void B(const Rng& rng);\n"
      "void C(Rng* rng);\n"
      "void D(std::vector<Rng>& rngs);\n";
  EXPECT_TRUE(
      RunRuleId("rng-stream-discipline", {Header("src/tasks/a.cc", body)}).empty());
}

TEST(LintRngDiscipline, FlagsCopyInitFromAnotherRng) {
  const std::string body =
      "Rng base = MakeRng();\n"
      "Rng copy = base;\n";
  const auto findings =
      RunRuleId("rng-stream-discipline", {Header("src/tasks/a.cc", body)});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("Split"), std::string::npos);
}

TEST(LintRngDiscipline, SplitAndSeedConstructionAreClean) {
  const std::string body =
      "Rng base = MakeRng();\n"
      "Rng child = base.Split();\n"
      "Rng seeded(seed);\n"
      "Rng restored = Rng::Restore(state);\n";
  EXPECT_TRUE(
      RunRuleId("rng-stream-discipline", {Header("src/tasks/a.cc", body)}).empty());
}

TEST(LintRngDiscipline, TestsAndRngItselfAreExempt) {
  const std::string body = "Rng base = MakeRng();\nRng copy = base;\n";
  EXPECT_TRUE(RunRuleId("rng-stream-discipline",
                  {Header("tests/stream_identity_test.cc", body)})
                  .empty());
  EXPECT_TRUE(
      RunRuleId("rng-stream-discipline", {Header("src/util/rng.h", body)}).empty());
}

// --- float-equality --------------------------------------------------------

TEST(LintFloatEquality, FlagsFloatComparisonsInAnalysisAndEcc) {
  const std::string body =
      "bool Same(double a, double b) { return a == b; }\n"
      "bool Zero(float x) { return x != 0.5f; }\n";
  const auto findings =
      RunRuleId("float-equality", {Header("src/analysis/a.cc", body)});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[0].severity, Severity::kWarn);  // warn, not error
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_FALSE(
      RunRuleId("float-equality", {Header("src/ecc/e.cc", body)}).empty());
}

TEST(LintFloatEquality, IntegerComparisonsAreClean) {
  const std::string body =
      "bool Same(int a, int b) { return a == b; }\n"
      "bool Ver(long v) { return v != 2; }\n";
  EXPECT_TRUE(
      RunRuleId("float-equality", {Header("src/analysis/a.cc", body)}).empty());
}

TEST(LintFloatEquality, OtherModulesAreOutOfScope) {
  const std::string body = "bool Same(double a, double b) { return a == b; }\n";
  EXPECT_TRUE(
      RunRuleId("float-equality", {Header("src/protocol/p.cc", body)}).empty());
  EXPECT_TRUE(
      RunRuleId("float-equality", {Header("tests/t.cc", body)}).empty());
}

// --- locale-formatting -----------------------------------------------------

TEST(LintLocaleFormatting, FlagsStreamingADoubleIntoAStringBuilder) {
  const std::string body =
      "#include <sstream>\n"
      "std::string Name(double eps) {\n"
      "  std::ostringstream os;\n"
      "  os << \"eps=\" << eps;\n"
      "  return os.str();\n"
      "}\n";
  const auto findings =
      RunRuleId("locale-formatting", {Header("src/channel/name.cc", body)});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("FormatDouble"), std::string::npos);
}

TEST(LintLocaleFormatting, FormatDoubleCallsAreClean) {
  const std::string body =
      "#include <sstream>\n"
      "std::string Name(double eps) {\n"
      "  std::ostringstream os;\n"
      "  os << \"eps=\" << FormatDouble(eps);\n"
      "  return os.str();\n"
      "}\n";
  EXPECT_TRUE(
      RunRuleId("locale-formatting", {Header("src/channel/name.cc", body)})
          .empty());
}

TEST(LintLocaleFormatting, UndeclaredStreamsAndIntsAreClean) {
  // std::cout is not a stream DECLARED in the repo; ints are locale-safe.
  const std::string body =
      "#include <sstream>\n"
      "void P(double eps, int n) {\n"
      "  std::cout << eps;\n"
      "  std::ostringstream os;\n"
      "  os << n;\n"
      "}\n";
  EXPECT_TRUE(
      RunRuleId("locale-formatting", {Header("src/analysis/p.cc", body)}).empty());
}

TEST(LintLocaleFormatting, FlagsToStringOfDouble) {
  const std::string body =
      "std::string F(double rate) { return std::to_string(rate); }\n"
      "std::string G(int n) { return std::to_string(n); }\n";
  const auto findings =
      RunRuleId("locale-formatting", {Header("src/analysis/f.cc", body)});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintLocaleFormatting, FlagsPrintfFloatConversionsInSrcOnly) {
  const std::string body =
      "void P(double r) { std::printf(\"rate=%.3f\\n\", r); }\n"
      "void Q(int n) { std::printf(\"n=%d\\n\", n); }\n";
  const auto in_src =
      RunRuleId("locale-formatting", {Header("src/analysis/p.cc", body)});
  ASSERT_EQ(in_src.size(), 1u);
  EXPECT_EQ(in_src[0].line, 1);
  // Tool mains never call setlocale, so the C standard pins their printf
  // locale to "C"; library code gets no such guarantee.
  EXPECT_TRUE(
      RunRuleId("locale-formatting", {Header("tools/nbx.cc", body)}).empty());
}

TEST(LintLocaleFormatting, StreamStateAlsoCoversPairedHeaderTypes) {
  const std::vector<SourceFile> files = {
      Header("src/fault/plan.h", "struct Spec { double beep_prob = 0.5; };\n"),
      Header("src/fault/plan.cc",
             "#include \"fault/plan.h\"\n"
             "#include <sstream>\n"
             "std::string S(const Spec& spec) {\n"
             "  std::ostringstream os;\n"
             "  os << spec.beep_prob;\n"
             "  return os.str();\n"
             "}\n"),
  };
  const auto findings = RunRuleId("locale-formatting", files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/fault/plan.cc");
  EXPECT_EQ(findings[0].line, 5);
}

}  // namespace
}  // namespace noisybeeps::lint
