#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace noisybeeps::lint {
namespace {

SourceFile Header(std::string path, std::string body) {
  return SourceFile{std::move(path), std::move(body)};
}

// --- StripCommentsAndStrings ----------------------------------------------

TEST(LintStrip, BlanksLineAndBlockComments) {
  const std::string code = "int x = 1; // std::rand here\nint y; /* more\nrand */ int z;\n";
  const std::string stripped = StripCommentsAndStrings(code);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_NE(stripped.find("int x = 1;"), std::string::npos);
  EXPECT_NE(stripped.find("int z;"), std::string::npos);
  // Line structure is preserved so findings keep their line numbers.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'),
            std::count(code.begin(), code.end(), '\n'));
}

TEST(LintStrip, BlanksStringAndCharLiterals) {
  const std::string code = "auto s = \"std::rand()\"; char c = 'x';";
  const std::string stripped = StripCommentsAndStrings(code);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find('x'), std::string::npos);
  EXPECT_NE(stripped.find("auto s ="), std::string::npos);
  EXPECT_NE(stripped.find("char c ="), std::string::npos);
}

TEST(LintStrip, DigitSeparatorIsNotACharLiteral) {
  const std::string code = "int big = 1'000'000; int after = 7;";
  EXPECT_EQ(StripCommentsAndStrings(code), code);
}

TEST(LintStrip, HandlesEscapedQuotes) {
  const std::string code = "auto s = \"a\\\"b\"; int keep = 3;";
  const std::string stripped = StripCommentsAndStrings(code);
  EXPECT_NE(stripped.find("int keep = 3;"), std::string::npos);
}

// --- header-guard ----------------------------------------------------------

constexpr char kGoodHeader[] =
    "#ifndef NOISYBEEPS_FOO_BAR_H_\n"
    "#define NOISYBEEPS_FOO_BAR_H_\n"
    "int f();\n"
    "#endif  // NOISYBEEPS_FOO_BAR_H_\n";

TEST(LintHeaderGuard, AcceptsCanonicalGuard) {
  EXPECT_TRUE(CheckHeaderGuard(Header("src/foo/bar.h", kGoodHeader)).empty());
}

TEST(LintHeaderGuard, FlagsWrongGuardName) {
  const std::string body =
      "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n";
  const auto findings = CheckHeaderGuard(Header("src/foo/bar.h", body));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "header-guard");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("NOISYBEEPS_FOO_BAR_H_"),
            std::string::npos);
}

TEST(LintHeaderGuard, FlagsMissingGuard) {
  const auto findings =
      CheckHeaderGuard(Header("src/foo/bar.h", "int f();\n"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "header-guard");
}

TEST(LintHeaderGuard, FlagsMismatchedDefine) {
  const std::string body =
      "#ifndef NOISYBEEPS_FOO_BAR_H_\n#define NOISYBEEPS_OTHER_H_\n#endif\n";
  const auto findings = CheckHeaderGuard(Header("src/foo/bar.h", body));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintHeaderGuard, IgnoresNonSrcFiles) {
  EXPECT_TRUE(CheckHeaderGuard(Header("tools/x.h", "int f();\n")).empty());
  EXPECT_TRUE(
      CheckHeaderGuard(Header("src/foo/bar.cc", "int f() { return 1; }\n"))
          .empty());
}

// --- banned-random ---------------------------------------------------------

TEST(LintBannedRandom, FlagsStdRandAndFriends) {
  const std::string body =
      "#include <random>\n"
      "int a() { return std::rand(); }\n"
      "std::mt19937 gen;\n"
      "int b() { return rand(); }\n";
  const auto findings =
      CheckBannedRandomness(Header("src/foo/bar.cc", body));
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].line, 3);
  EXPECT_EQ(findings[3].line, 4);
  for (const Finding& f : findings) EXPECT_EQ(f.rule_id, "banned-random");
}

TEST(LintBannedRandom, ExemptsRngCc) {
  const std::string body = "#include <random>\nstd::mt19937 gen;\n";
  EXPECT_TRUE(CheckBannedRandomness(Header("src/util/rng.cc", body)).empty());
}

TEST(LintBannedRandom, IgnoresCommentsStringsAndSubstrings) {
  const std::string body =
      "// std::rand is banned\n"
      "const char* msg = \"std::rand\";\n"
      "int operand = 3;\n"
      "int brand = operand;\n";
  EXPECT_TRUE(
      CheckBannedRandomness(Header("src/foo/bar.cc", body)).empty());
}

TEST(LintBannedRandom, BareRandNeedsCallParens) {
  // A variable merely NAMED rand is legal; calling rand() is not.
  EXPECT_TRUE(CheckBannedRandomness(
                  Header("src/foo/bar.cc", "int rand = 3; int y = rand;\n"))
                  .empty());
  EXPECT_EQ(CheckBannedRandomness(
                Header("src/foo/bar.cc", "int y = rand();\n"))
                .size(),
            1u);
}

// --- raw-thread ------------------------------------------------------------

TEST(LintRawThread, FlagsThreadSpawnsOutsideParallelH) {
  const std::string body =
      "#include <thread>\n"
      "void f() { std::thread t([]{}); t.join(); }\n"
      "void g() { auto fut = std::async([]{}); }\n";
  const auto findings = CheckRawThreads(Header("src/foo/bar.cc", body));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "raw-thread");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
}

TEST(LintRawThread, ExemptsParallelHAndConcurrencyQueries) {
  const std::string spawn = "void f() { std::thread t([]{}); t.join(); }\n";
  EXPECT_TRUE(CheckRawThreads(Header("src/util/parallel.h", spawn)).empty());
  // Asking how many cores exist spawns nothing.
  const std::string query =
      "int n() { return (int)std::thread::hardware_concurrency(); }\n";
  EXPECT_TRUE(CheckRawThreads(Header("src/foo/bar.cc", query)).empty());
}

// --- checkpoint-atomicity --------------------------------------------------

TEST(LintCheckpointAtomicity, FlagsDirectCheckpointStreamWrites) {
  const std::string body =
      "void Save(const std::string& checkpoint_path) {\n"
      "  std::ofstream out(checkpoint_path, std::ios::binary);\n"
      "  std::ofstream raw(\"run.nbckpt\");\n"
      "}\n";
  const auto findings =
      CheckCheckpointAtomicity(Header("tools/sweep.cc", body));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "checkpoint-atomicity");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_NE(findings[0].message.find("WriteCheckpointAtomic"),
            std::string::npos);
}

TEST(LintCheckpointAtomicity, ExemptsResilienceModuleAndTests) {
  const std::string body =
      "void W(const std::string& p) { std::ofstream out(p + \".ckpt\"); }\n";
  EXPECT_TRUE(
      CheckCheckpointAtomicity(Header("src/resilience/checkpoint.cc", body))
          .empty());
  // Negative tests write deliberately corrupt checkpoint files.
  EXPECT_TRUE(CheckCheckpointAtomicity(
                  Header("tests/resilience_checkpoint_test.cc", body))
                  .empty());
}

TEST(LintCheckpointAtomicity, IgnoresUnrelatedStreamsAndComments) {
  // ofstream writes of non-checkpoint files are fine...
  const std::string csv = "std::ofstream out(\"results.csv\");\n";
  EXPECT_TRUE(CheckCheckpointAtomicity(Header("bench/b.cc", csv)).empty());
  // ...as is merely TALKING about checkpoints next to an ofstream.
  const std::string comment =
      "std::ofstream out(path);  // not a checkpoint: plain CSV\n";
  EXPECT_TRUE(
      CheckCheckpointAtomicity(Header("bench/b.cc", comment)).empty());
  // And "ofstream" inside an identifier is not the stream type.
  const std::string fake = "my_std__ofstream_checkpoint(path);\n";
  EXPECT_TRUE(CheckCheckpointAtomicity(Header("bench/b.cc", fake)).empty());
}

// --- include-cycle ---------------------------------------------------------

TEST(LintIncludeCycle, AcceptsAcyclicModuleGraph) {
  const std::vector<SourceFile> files = {
      Header("src/util/a.h", "int a();\n"),
      Header("src/ecc/b.h", "#include \"util/a.h\"\n"),
      Header("src/coding/c.h", "#include \"ecc/b.h\"\n#include \"util/a.h\"\n"),
  };
  EXPECT_TRUE(CheckIncludeCycles(files).empty());
}

TEST(LintIncludeCycle, DetectsSeededCycle) {
  const std::vector<SourceFile> files = {
      Header("src/util/a.h", "#include \"ecc/b.h\"\n"),
      Header("src/ecc/b.h", "#include \"util/a.h\"\n"),
  };
  const auto findings = CheckIncludeCycles(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "include-cycle");
  EXPECT_NE(findings[0].message.find("->"), std::string::npos);
}

TEST(LintIncludeCycle, IntraModuleIncludesAreFine) {
  const std::vector<SourceFile> files = {
      Header("src/util/a.h", "#include \"util/b.h\"\n"),
      Header("src/util/b.h", "#include \"util/c.h\"\n"),
      Header("src/util/c.h", "int c();\n"),
  };
  EXPECT_TRUE(CheckIncludeCycles(files).empty());
}

// --- fault-layering --------------------------------------------------------

TEST(LintFaultLayering, AcceptsTheIntendedGraph) {
  const std::vector<SourceFile> files = {
      Header("src/fault/fault_plan.h", "#include \"util/require.h\"\n"),
      Header("src/fault/injection.h",
             "#include \"channel/channel.h\"\n"
             "#include \"fault/fault_plan.h\"\n"
             "#include \"protocol/round_engine.h\"\n"),
      Header("src/coding/simulator.h", "#include \"fault/fault_plan.h\"\n"),
      Header("bench/bench_faults.cc", "#include \"fault/injection.h\"\n"),
      Header("tools/nbsim.cc", "#include \"fault/fault_plan.h\"\n"),
      Header("tests/fault_plan_test.cc",
             "#include \"fault/fault_plan.h\"\n"),
  };
  EXPECT_TRUE(CheckFaultLayering(files).empty());
}

TEST(LintFaultLayering, FlagsFaultReachingUpIntoCoding) {
  const std::vector<SourceFile> files = {
      Header("src/fault/injection.h", "#include \"coding/simulator.h\"\n"),
  };
  const auto findings = CheckFaultLayering(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "fault-layering");
  EXPECT_EQ(findings[0].file, "src/fault/injection.h");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("coding"), std::string::npos);
}

TEST(LintFaultLayering, FlagsCoreDependingBackOnFault) {
  const std::vector<SourceFile> files = {
      Header("src/protocol/executor.h", "#include \"fault/injection.h\"\n"),
      Header("src/channel/channel.h",
             "int x;\n#include \"fault/fault_plan.h\"\n"),
      Header("src/analysis/budget.h", "#include \"fault/fault_plan.h\"\n"),
  };
  const auto findings = CheckFaultLayering(files);
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule_id, "fault-layering");
  }
  // The second file's offending include sits on line 2.
  const auto channel = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.file == "src/channel/channel.h"; });
  ASSERT_NE(channel, findings.end());
  EXPECT_EQ(channel->line, 2);
}

TEST(LintFaultLayering, IgnoresCommentedIncludesAndSystemHeaders) {
  const std::vector<SourceFile> files = {
      Header("src/protocol/executor.h",
             "// #include \"fault/injection.h\"\n#include <vector>\n"),
      Header("src/fault/fault_plan.cc",
             "#include <string>\n// see coding/simulator.h for the verdict\n"),
  };
  EXPECT_TRUE(CheckFaultLayering(files).empty());
}

// --- require-precondition --------------------------------------------------

constexpr char kChannelHeader[] =
    "#ifndef NOISYBEEPS_FOO_WIDGET_H_\n"
    "#define NOISYBEEPS_FOO_WIDGET_H_\n"
    "class Widget {\n"
    " public:\n"
    "  // Precondition: 0 <= eps < 1/2.\n"
    "  explicit Widget(double eps);\n"
    "};\n"
    "// Preconditions: n >= 1.\n"
    "Widget MakeWidget(int n);\n"
    "#endif  // NOISYBEEPS_FOO_WIDGET_H_\n";

TEST(LintRequire, PassesWhenDefinitionsCheck) {
  const std::string cc =
      "#include \"foo/widget.h\"\n"
      "Widget::Widget(double eps) { NB_REQUIRE(eps >= 0, \"eps\"); }\n"
      "Widget MakeWidget(int n) {\n"
      "  NB_REQUIRE(n >= 1, \"n\");\n"
      "  return Widget(0.1);\n"
      "}\n";
  const std::vector<SourceFile> files = {
      Header("src/foo/widget.h", kChannelHeader),
      Header("src/foo/widget.cc", cc)};
  EXPECT_TRUE(CheckRequireCoverage(files).empty());
}

TEST(LintRequire, FlagsUncheckedConstructorAndFactory) {
  const std::string cc =
      "#include \"foo/widget.h\"\n"
      "Widget::Widget(double eps) { (void)eps; }\n"
      "Widget MakeWidget(int n) { (void)n; return Widget(0.1); }\n";
  const std::vector<SourceFile> files = {
      Header("src/foo/widget.h", kChannelHeader),
      Header("src/foo/widget.cc", cc)};
  const auto findings = CheckRequireCoverage(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "require-precondition");
  EXPECT_EQ(findings[0].line, 5);  // the ctor's Precondition comment
  EXPECT_NE(findings[0].message.find("Widget"), std::string::npos);
  EXPECT_EQ(findings[1].line, 8);  // the factory's Precondition comment
}

TEST(LintRequire, UndocumentedFunctionsAreNotRequired) {
  const std::string header =
      "class Plain {\n public:\n  explicit Plain(int x);\n};\n";
  const std::string cc = "Plain::Plain(int x) { (void)x; }\n";
  const std::vector<SourceFile> files = {
      Header("src/foo/plain.h", header), Header("src/foo/plain.cc", cc)};
  EXPECT_TRUE(CheckRequireCoverage(files).empty());
}

TEST(LintRequire, FindsHeaderOnlyDefinitions) {
  const std::string header =
      "class Inline {\n public:\n"
      "  // Precondition: x > 0.\n"
      "  explicit Inline(int x) { (void)x; }\n"
      "};\n";
  const auto findings =
      CheckRequireCoverage({Header("src/foo/inline.h", header)});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule_id, "require-precondition");
}

// --- channel-hot-path ------------------------------------------------------

TEST(LintChannelHotPath, FlagsPerSampleFlipsInsideDeliver) {
  const std::string body =
      "void Foo::Deliver(int n, std::span<std::uint8_t> r, Rng& rng) const {\n"
      "  const bool flip = rng.UniformDouble() < eps_;\n"
      "  const bool again = rng.Bernoulli(eps_);\n"
      "  FillShared(r, flip != again);\n"
      "}\n";
  const auto findings =
      CheckChannelHotPath(Header("src/channel/foo.cc", body));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "channel-hot-path");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_NE(findings[0].message.find("BernoulliSampler"), std::string::npos);
}

TEST(LintChannelHotPath, PrecomputedSamplerDrawsAreClean) {
  const std::string body =
      "void Foo::Deliver(int n, std::span<std::uint8_t> r, Rng& rng) const {\n"
      "  // Bernoulli in a comment is fine; so is the sampler itself.\n"
      "  FillShared(r, (n > 0) != noise_.Sample(rng));\n"
      "}\n"
      "Foo::Foo(double eps) : noise_(BernoulliSampler(eps)) {}\n";
  EXPECT_TRUE(
      CheckChannelHotPath(Header("src/channel/foo.cc", body)).empty());
}

TEST(LintChannelHotPath, OnlyChannelSourcesAreInScope) {
  // Elsewhere a direct Bernoulli draw is legitimate (setup code, tests,
  // protocols) -- the rule polices the Monte Carlo inner loop only.
  const std::string body =
      "void Deliver(int n, std::span<std::uint8_t> r, Rng& rng) {\n"
      "  r[0] = rng.Bernoulli(0.5) ? 1 : 0;\n"
      "}\n";
  EXPECT_TRUE(
      CheckChannelHotPath(Header("src/protocol/relay.cc", body)).empty());
  EXPECT_TRUE(CheckChannelHotPath(Header("tests/foo_test.cc", body)).empty());
}

TEST(LintChannelHotPath, DeclarationsAndOtherFunctionsAreSkipped) {
  // A pure declaration has no body to scan, draws outside Deliver are out
  // of scope, and DeliverShared is a different identifier.
  const std::string body =
      "void Deliver(int n, std::span<std::uint8_t> r, Rng& rng) const "
      "override;\n"
      "bool Warmup(Rng& rng) { return rng.Bernoulli(0.5); }\n"
      "bool DeliverShared(int n, Rng& rng) { return rng.Bernoulli(eps_); }\n";
  EXPECT_TRUE(
      CheckChannelHotPath(Header("src/channel/foo.h", body)).empty());
}

// --- output formats --------------------------------------------------------

TEST(LintFormat, TextIsFileLineRuleMessage) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 12, "banned-random", "no"}};
  EXPECT_EQ(FormatText(findings), "src/a.cc:12: banned-random: no\n");
}

TEST(LintFormat, JsonEscapesAndRoundTrips) {
  const std::vector<Finding> findings = {
      {"src/a.cc", 3, "header-guard", "say \"hi\"\\"}};
  const std::string json = FormatJson(findings);
  EXPECT_NE(json.find("\"file\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_EQ(FormatJson({}), "[]\n");
}

// --- RunAllChecks ----------------------------------------------------------

TEST(LintRunAll, AggregatesAndSortsFindings) {
  const std::vector<SourceFile> files = {
      Header("src/zoo/z.h", "int z();\n"),  // missing guard
      Header("src/foo/bad.cc",
             "int f() { return std::rand(); }\n"),  // banned randomness
  };
  const auto findings = RunAllChecks(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "src/foo/bad.cc");
  EXPECT_EQ(findings[0].rule_id, "banned-random");
  EXPECT_EQ(findings[1].file, "src/zoo/z.h");
  EXPECT_EQ(findings[1].rule_id, "header-guard");
}

TEST(LintRunAll, CleanFilesProduceNoFindings) {
  const std::vector<SourceFile> files = {
      Header("src/foo/bar.h", kGoodHeader),
      Header("src/foo/bar.cc",
             "#include \"foo/bar.h\"\nint f() { return 1; }\n")};
  EXPECT_TRUE(RunAllChecks(files).empty());
}

}  // namespace
}  // namespace noisybeeps::lint
