#include "protocol/combinators.h"

#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "coding/hierarchical_sim.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "tasks/or_task.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

std::shared_ptr<const Protocol> SmallInputSet(Rng& rng, int n) {
  return std::shared_ptr<const Protocol>(
      MakeInputSetProtocol(SampleInputSet(n, rng)));
}

TEST(ConcatProtocols, LengthAndPartiesAdd) {
  Rng rng(1);
  const auto a = SmallInputSet(rng, 4);
  const auto b = SmallInputSet(rng, 4);
  const auto joined = ConcatProtocols(a, b);
  EXPECT_EQ(joined->num_parties(), 4);
  EXPECT_EQ(joined->length(), a->length() + b->length());
}

TEST(ConcatProtocols, TranscriptIsConcatenation) {
  Rng rng(2);
  const auto a = SmallInputSet(rng, 5);
  const auto b = SmallInputSet(rng, 5);
  const auto joined = ConcatProtocols(a, b);
  BitString expected = ReferenceTranscript(*a);
  expected.Append(ReferenceTranscript(*b));
  EXPECT_EQ(ReferenceTranscript(*joined), expected);
}

TEST(ConcatProtocols, OutputsConcatenatePerPhase) {
  Rng rng(3);
  const NoiselessChannel channel;
  const auto a = std::shared_ptr<const Protocol>(
      MakeOrProtocol({1, 0, 0}));
  const auto b = std::shared_ptr<const Protocol>(
      MakeOrProtocol({0, 0, 0}));
  const auto joined = ConcatProtocols(a, b);
  const ExecutionResult run = Execute(*joined, channel, rng);
  for (const PartyOutput& out : run.outputs) {
    EXPECT_EQ(out, (PartyOutput{1, 0}));
  }
}

TEST(ConcatProtocols, SecondPhaseIsAdaptiveToItsOwnSuffix) {
  // The second protocol must see only the suffix: concatenating two OR
  // protocols whose answers differ proves the suffix carving is right
  // (covered above); here check mixed lengths.
  Rng rng(4);
  const auto a = SmallInputSet(rng, 3);  // length 6
  const auto b = std::shared_ptr<const Protocol>(MakeOrProtocol({0, 1, 0}));
  const auto joined = ConcatProtocols(a, b);
  EXPECT_EQ(joined->length(), 7);
  const BitString pi = ReferenceTranscript(*joined);
  EXPECT_TRUE(pi[6]);  // the OR round
}

TEST(ConcatProtocols, RejectsMismatchedPartyCounts) {
  Rng rng(5);
  const auto a = SmallInputSet(rng, 3);
  const auto b = SmallInputSet(rng, 4);
  EXPECT_THROW((void)ConcatProtocols(a, b), std::invalid_argument);
  EXPECT_THROW((void)ConcatProtocols(nullptr, a), std::invalid_argument);
}

TEST(RepeatProtocol, OnceReturnsOriginal) {
  Rng rng(6);
  const auto p = SmallInputSet(rng, 4);
  EXPECT_EQ(RepeatProtocol(p, 1).get(), p.get());
  EXPECT_THROW((void)RepeatProtocol(p, 0), std::invalid_argument);
}

TEST(RepeatProtocol, KFoldLengths) {
  Rng rng(7);
  const auto p = SmallInputSet(rng, 4);  // length 8
  const auto repeated = RepeatProtocol(p, 5);
  EXPECT_EQ(repeated->length(), 40);
  // Transcript is 5 copies.
  const BitString once = ReferenceTranscript(*p);
  const BitString all = ReferenceTranscript(*repeated);
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(all.Substring(k * 8, (k + 1) * 8), once) << k;
  }
}

TEST(RepeatProtocol, LongRepeatedWorkloadSimulatesCorrectly) {
  // Combinators + hierarchy: a protocol long enough to span many chunks
  // and several audit levels, simulated end to end.
  Rng rng(8);
  const auto base = SmallInputSet(rng, 6);  // length 12
  const auto repeated = RepeatProtocol(base, 8);  // length 96
  const CorrelatedNoisyChannel channel(0.05);
  const HierarchicalSimulator sim;
  const SimulationResult result = sim.Simulate(*repeated, channel, rng);
  EXPECT_FALSE(result.budget_exhausted());
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*repeated)));
}

}  // namespace
}  // namespace noisybeeps
