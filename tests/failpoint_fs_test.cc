// The Fs seam: RealFs against the actual filesystem, and FaultingFs's
// injection semantics -- per-kind behaviour, first-match resolution, hit
// counting, fire accounting, and the determinism of corrupt byte flips.
#include "failpoint/fs.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "failpoint/fail_plan.h"

namespace noisybeeps::failpoint {
namespace {

namespace stdfs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (stdfs::path(::testing::TempDir()) / name).string();
}

// An in-memory Fs: deterministic, no disk, and easy to inspect.  The
// FaultingFs tests wrap this so they exercise injection logic only.
class MemFs final : public Fs {
 public:
  [[nodiscard]] std::optional<std::string> ReadFile(
      const std::string& path) override {
    const auto it = files_.find(path);
    if (it == files_.end()) return std::nullopt;
    return it->second;
  }
  void WriteFile(const std::string& path, std::string_view contents) override {
    files_[path] = std::string(contents);
  }
  void SyncFile(const std::string& path) override {
    if (files_.count(path) == 0) throw FsError("cannot open " + path);
    ++syncs_;
  }
  void RenameFile(const std::string& from, const std::string& to) override {
    const auto it = files_.find(from);
    if (it == files_.end()) throw FsError("cannot rename " + from);
    files_[to] = it->second;
    files_.erase(it);
  }
  void RemoveFile(const std::string& path) override { files_.erase(path); }

  std::map<std::string, std::string> files_;
  int syncs_ = 0;
};

TEST(RealFs, ReadOfMissingFileIsNullopt) {
  EXPECT_FALSE(
      RealFs::Instance()->ReadFile(TempPath("no_such_file")).has_value());
}

TEST(RealFs, WriteReadSyncRoundTrip) {
  RealFs* fs = RealFs::Instance();
  const std::string path = TempPath("realfs_roundtrip");
  const std::string payload("binary\0payload\xff\n", 16);
  fs->WriteFile(path, payload);
  fs->SyncFile(path);
  const auto back = fs->ReadFile(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  fs->RemoveFile(path);
  EXPECT_FALSE(fs->ReadFile(path).has_value());
}

TEST(RealFs, RenameReplacesTarget) {
  RealFs* fs = RealFs::Instance();
  const std::string from = TempPath("realfs_from");
  const std::string to = TempPath("realfs_to");
  fs->WriteFile(from, "new");
  fs->WriteFile(to, "old");
  fs->RenameFile(from, to);
  EXPECT_FALSE(fs->ReadFile(from).has_value());
  EXPECT_EQ(fs->ReadFile(to).value_or(""), "new");
  fs->RemoveFile(to);
}

TEST(RealFs, RemoveOfMissingFileIsNoOp) {
  EXPECT_NO_THROW(RealFs::Instance()->RemoveFile(TempPath("no_such_file")));
}

TEST(RealFs, ErrorsNameThePath) {
  try {
    RealFs::Instance()->SyncFile(TempPath("no_such_file"));
    FAIL() << "sync of a missing file must throw";
  } catch (const FsError& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_file"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(RealFs::Instance()->RenameFile(TempPath("no_such_file"),
                                              TempPath("elsewhere")),
               FsError);
}

TEST(FaultingFs, EmptyPlanIsCountingPassThrough) {
  MemFs mem;
  FaultingFs fs(&mem);
  fs.WriteFile("a", "one");
  fs.WriteFile("b", "two");
  fs.SyncFile("a");
  fs.RenameFile("a", "c");
  EXPECT_EQ(fs.ReadFile("c").value_or(""), "one");
  fs.RemoveFile("b");
  EXPECT_EQ(fs.HitCount(FailOp::kWrite), 2);
  EXPECT_EQ(fs.HitCount(FailOp::kSync), 1);
  EXPECT_EQ(fs.HitCount(FailOp::kRename), 1);
  EXPECT_EQ(fs.HitCount(FailOp::kRead), 1);
  EXPECT_EQ(fs.HitCount(FailOp::kRemove), 1);
  EXPECT_EQ(fs.TotalInjected(), 0);
}

TEST(FaultingFs, FailThrowsWithoutTouchingTheFile) {
  MemFs mem;
  mem.files_["f"] = "intact";
  FaultingFs fs(&mem, FailPlan().Fail(FailOp::kWrite, 0, 0));
  EXPECT_THROW(fs.WriteFile("f", "clobbered"), FsError);
  EXPECT_EQ(mem.files_.at("f"), "intact");
  // The window closed at hit 0; hit 1 goes through.
  fs.WriteFile("f", "updated");
  EXPECT_EQ(mem.files_.at("f"), "updated");
  EXPECT_EQ(fs.SpecFires().at(0), 1);
  EXPECT_EQ(fs.TotalInjected(), 1);
}

TEST(FaultingFs, EnospcLandsPrefixThenThrows) {
  MemFs mem;
  FaultingFs fs(&mem, FailPlan().Enospc(0, 0, 0.5));
  try {
    fs.WriteFile("f", "12345678");
    FAIL() << "enospc must throw";
  } catch (const FsError& e) {
    EXPECT_NE(std::string(e.what()).find("no space left"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(mem.files_.at("f"), "1234");  // half the bytes landed
}

TEST(FaultingFs, TornWriteLandsPrefixThenCrashes) {
  MemFs mem;
  FaultingFs fs(&mem, FailPlan().Torn(0, 0, 0.25));
  EXPECT_THROW(fs.WriteFile("f", "12345678"), InjectedCrash);
  EXPECT_EQ(mem.files_.at("f"), "12");
}

TEST(FaultingFs, CrashFiresBeforeTheOperation) {
  MemFs mem;
  mem.files_["f"] = "intact";
  FaultingFs fs(&mem, FailPlan().Crash(FailOp::kRemove, 0));
  EXPECT_THROW(fs.RemoveFile("f"), InjectedCrash);
  EXPECT_EQ(mem.files_.count("f"), 1u) << "crash precedes the remove";
}

TEST(FaultingFs, InjectedCrashIsNotAnFsError) {
  MemFs mem;
  FaultingFs fs(&mem, FailPlan().Crash(FailOp::kSync, 0));
  mem.files_["f"] = "x";
  // Recovery code catching FsError must NOT swallow a simulated kill.
  try {
    fs.SyncFile("f");
    FAIL() << "crash must throw";
  } catch (const FsError&) {
    FAIL() << "InjectedCrash must not be catchable as FsError";
  } catch (const InjectedCrash&) {
    // the only acceptable exit
  }
}

TEST(FaultingFs, TruncateReturnsSilentPrefix) {
  MemFs mem;
  mem.files_["f"] = "12345678";
  FaultingFs fs(&mem, FailPlan().Truncate(0, 0, 0.5));
  EXPECT_EQ(fs.ReadFile("f").value_or(""), "1234");
  // Next read is past the window and sees the whole file.
  EXPECT_EQ(fs.ReadFile("f").value_or(""), "12345678");
}

TEST(FaultingFs, TruncateOfMissingFileDoesNotFire) {
  MemFs mem;
  FaultingFs fs(&mem, FailPlan().Truncate(0, FailSpec::kNoLastHit, 0.5));
  EXPECT_FALSE(fs.ReadFile("ghost").has_value());
  EXPECT_EQ(fs.SpecFires().at(0), 0) << "nothing to damage, nothing fired";
  EXPECT_EQ(fs.TotalInjected(), 0);
  EXPECT_EQ(fs.HitCount(FailOp::kRead), 1) << "the hit still counts";
}

TEST(FaultingFs, CorruptFlipsDeterministically) {
  const std::string original(64, 'A');
  const auto read_corrupted = [&](std::uint64_t seed) {
    MemFs mem;
    mem.files_["f"] = original;
    FaultingFs fs(&mem, FailPlan(seed).Corrupt(0, 0, 4));
    return fs.ReadFile("f").value_or("");
  };
  const std::string once = read_corrupted(7);
  EXPECT_NE(once, original);
  EXPECT_EQ(once.size(), original.size());
  int diffs = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    diffs += (once[i] != original[i]) ? 1 : 0;
  }
  EXPECT_GE(diffs, 1);
  EXPECT_LE(diffs, 4);  // flips can collide on a position
  // Same plan seed, same damage; a different seed rots differently.
  EXPECT_EQ(read_corrupted(7), once);
  EXPECT_NE(read_corrupted(8), once);
}

TEST(FaultingFs, CorruptOfEmptyFileDoesNotFire) {
  MemFs mem;
  mem.files_["f"] = "";
  FaultingFs fs(&mem, FailPlan().Corrupt(0, 0, 2));
  EXPECT_EQ(fs.ReadFile("f").value_or("x"), "");
  EXPECT_EQ(fs.SpecFires().at(0), 0);
}

TEST(FaultingFs, LatencyRecordsAndCallsSleeper) {
  MemFs mem;
  FaultingFs fs(&mem, FailPlan().Latency(FailOp::kWrite, 0, 2, 20));
  std::vector<std::int64_t> slept;
  fs.SetSleeper([&](std::int64_t ms) { slept.push_back(ms); });
  fs.WriteFile("f", "a");
  fs.WriteFile("f", "b");
  EXPECT_EQ(mem.files_.at("f"), "b") << "latency must not lose the write";
  EXPECT_EQ(fs.InjectedLatencyMillis(), 40);
  EXPECT_EQ(slept, (std::vector<std::int64_t>{20, 20}));
  EXPECT_EQ(fs.SpecFires().at(0), 2);
}

TEST(FaultingFs, FirstMatchingSpecWins) {
  MemFs mem;
  mem.files_["f"] = "intact";
  FailPlan plan;
  plan.Latency(FailOp::kWrite, 0, FailSpec::kNoLastHit, 5)
      .Fail(FailOp::kWrite, 0, FailSpec::kNoLastHit);
  FaultingFs fs(&mem, plan);
  fs.WriteFile("f", "updated");  // latency, not failure
  EXPECT_EQ(mem.files_.at("f"), "updated");
  EXPECT_EQ(fs.SpecFires().at(0), 1);
  EXPECT_EQ(fs.SpecFires().at(1), 0);
}

TEST(FaultingFs, HitWindowsSelectSpecificInvocations) {
  MemFs mem;
  FaultingFs fs(&mem, FailPlan().Fail(FailOp::kWrite, 1, 2));
  fs.WriteFile("f", "hit0");
  EXPECT_THROW(fs.WriteFile("f", "hit1"), FsError);
  EXPECT_THROW(fs.WriteFile("f", "hit2"), FsError);
  fs.WriteFile("f", "hit3");
  EXPECT_EQ(mem.files_.at("f"), "hit3");
  EXPECT_EQ(fs.HitCount(FailOp::kWrite), 4);
  EXPECT_EQ(fs.SpecFires().at(0), 2);
}

TEST(FaultingFs, OpsCountIndependently) {
  MemFs mem;
  // A read-targeting plan must not perturb write hit numbering.
  FaultingFs fs(&mem, FailPlan().Fail(FailOp::kRead, 0, 0));
  fs.WriteFile("f", "x");
  EXPECT_THROW((void)fs.ReadFile("f"), FsError);
  EXPECT_EQ(fs.ReadFile("f").value_or(""), "x");
  EXPECT_EQ(fs.HitCount(FailOp::kWrite), 1);
  EXPECT_EQ(fs.HitCount(FailOp::kRead), 2);
}

}  // namespace
}  // namespace noisybeeps::failpoint
