#include "ecc/reed_solomon.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.h"

namespace noisybeeps {
namespace {

std::vector<std::uint8_t> RandomData(int k, Rng& rng) {
  std::vector<std::uint8_t> data(k);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return data;
}

TEST(ReedSolomon, ParameterValidation) {
  EXPECT_THROW(ReedSolomon(10, 10), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(10, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(256, 100), std::invalid_argument);
  const ReedSolomon rs(255, 223);
  EXPECT_EQ(rs.parity_symbols(), 32);
  EXPECT_EQ(rs.correctable_errors(), 16);
}

TEST(ReedSolomon, EncodeIsSystematic) {
  Rng rng(51);
  const ReedSolomon rs(20, 12);
  const auto data = RandomData(12, rng);
  const auto word = rs.Encode(data);
  ASSERT_EQ(word.size(), 20u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(word[i], data[i]);
}

TEST(ReedSolomon, CleanWordDecodes) {
  Rng rng(52);
  const ReedSolomon rs(30, 20);
  const auto data = RandomData(20, rng);
  const auto decoded = rs.Decode(rs.Encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, EncodeRejectsWrongLength) {
  const ReedSolomon rs(10, 6);
  EXPECT_THROW((void)rs.Encode(std::vector<std::uint8_t>(5)),
               std::invalid_argument);
  EXPECT_THROW((void)rs.Decode(std::vector<std::uint8_t>(9)),
               std::invalid_argument);
}

class RsCorrectionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RsCorrectionTest, CorrectsUpToTErrors) {
  const auto [n, k] = GetParam();
  const ReedSolomon rs(n, k);
  const int t = rs.correctable_errors();
  Rng rng(60 + n * 257 + k);
  for (int trial = 0; trial < 25; ++trial) {
    const auto data = RandomData(k, rng);
    auto word = rs.Encode(data);
    // Corrupt exactly e distinct positions with nonzero error values.
    const int e = 1 + static_cast<int>(rng.UniformInt(t));
    std::vector<int> positions;
    while (static_cast<int>(positions.size()) < e) {
      const int p = static_cast<int>(rng.UniformInt(n));
      bool fresh = true;
      for (int q : positions) fresh = fresh && q != p;
      if (fresh) positions.push_back(p);
    }
    for (int p : positions) {
      word[p] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(255));
    }
    const auto decoded = rs.Decode(word);
    ASSERT_TRUE(decoded.has_value())
        << "n=" << n << " k=" << k << " e=" << e << " trial=" << trial;
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RsCorrectionTest,
                         ::testing::Values(std::make_tuple(15, 9),
                                           std::make_tuple(20, 12),
                                           std::make_tuple(32, 16),
                                           std::make_tuple(63, 45),
                                           std::make_tuple(255, 223)));

TEST(ReedSolomon, DetectsBeyondRadiusMostly) {
  // With t+several errors the decoder must not silently return wrong data
  // *as the original*: it either fails (nullopt) or -- rarely -- lands on
  // a different codeword.  It must never return the original data.
  Rng rng(61);
  const ReedSolomon rs(20, 10);
  const int t = rs.correctable_errors();
  int wrong_accepts = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto data = RandomData(10, rng);
    auto word = rs.Encode(data);
    std::vector<int> positions;
    while (static_cast<int>(positions.size()) < t + 3) {
      const int p = static_cast<int>(rng.UniformInt(20));
      bool fresh = true;
      for (int q : positions) fresh = fresh && q != p;
      if (fresh) positions.push_back(p);
    }
    for (int p : positions) {
      word[p] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(255));
    }
    const auto decoded = rs.Decode(word);
    if (decoded.has_value()) {
      EXPECT_NE(*decoded, data) << "trial " << trial;
      ++wrong_accepts;
    }
  }
  // Miscorrection beyond the radius is possible but rare.
  EXPECT_LE(wrong_accepts, 6);
}

TEST(ReedSolomon, CorrectsBurstErrors) {
  Rng rng(62);
  const ReedSolomon rs(40, 24);
  const auto data = RandomData(24, rng);
  auto word = rs.Encode(data);
  // A contiguous burst of t symbol errors.
  for (int p = 5; p < 5 + rs.correctable_errors(); ++p) {
    word[p] ^= 0x5A;
  }
  const auto decoded = rs.Decode(word);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomon, ParityOneCodeDetectsOnly) {
  // n-k = 1 corrects zero errors; clean decode still works.
  const ReedSolomon rs(9, 8);
  EXPECT_EQ(rs.correctable_errors(), 0);
  Rng rng(63);
  const auto data = RandomData(8, rng);
  const auto decoded = rs.Decode(rs.Encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

}  // namespace
}  // namespace noisybeeps
