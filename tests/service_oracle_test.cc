// The service crash-consistency oracle -- PR 8's acceptance criterion,
// extending the failpoint oracle (failpoint_oracle_test.cc) from one
// checkpoint file to the whole service: cache lookups, job checkpoints,
// entry inserts, checkpoint removal.  A counting FaultingFs enumerates
// every Fs operation a three-request workload performs; the oracle then
//   * kill -9s the service at EACH operation (InjectedCrash) and reboots
//     a fresh service over the surviving cache directory -- the rerun
//     must answer every request with baseline-identical results (only
//     the cached= flag may differ: a reboot legitimately serves from
//     whatever the crash left behind) and leave no torn temp files;
//   * injects an ordinary failure at each operation -- the run must
//     degrade gracefully (no throw, no wrong answer);
//   * corrupts / truncates every read -- rot must quarantine and
//     recompute, never serve damaged bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "failpoint/fail_plan.h"
#include "failpoint/fs.h"
#include "resilience/clock.h"
#include "service/protocol.h"
#include "service/service.h"

namespace noisybeeps::service {
namespace {

namespace stdfs = std::filesystem;

using failpoint::FailOp;
using failpoint::FailOpName;
using failpoint::FailPlan;
using failpoint::FaultingFs;
using failpoint::InjectedCrash;
using failpoint::RealFs;

std::string FreshDir(const std::string& name) {
  const stdfs::path dir = stdfs::path(::testing::TempDir()) / name;
  stdfs::remove_all(dir);
  stdfs::create_directories(dir);
  return dir.string();
}

JobSpec FastSpec(std::uint64_t seed) {
  JobSpec spec;
  spec.task = "input_set";
  spec.channel = "correlated";
  spec.sim = "repetition";
  spec.n = 8;
  spec.eps = 0.05;
  spec.trials = 9;
  spec.seed = seed;
  return spec;
}

// The workload: two recomputes with a cache hit between them, so every
// kind of service I/O (miss lookup, job checkpointing, insert, hit
// lookup, checkpoint removal) registers failpoints.
std::vector<Request> Workload() {
  return {{"a1", FastSpec(21)}, {"a2", FastSpec(21)}, {"b1", FastSpec(99)}};
}

ServiceOptions Options(const std::string& dir, failpoint::Fs* fs,
                       const resilience::Clock* clock) {
  ServiceOptions options;
  options.cache_dir = dir;
  options.fs = fs;
  options.clock = clock;
  options.checkpoint_every = 4;
  return options;
}

// One reply's comparable spelling: the wire line with the cached= flag
// normalized away.  EVERY other byte -- status, fingerprint, success
// ratio, verdicts, means -- must be crash-schedule-invariant.
std::string NormalizedLine(Reply reply) {
  reply.cached = false;
  return FormatReplyLine(reply);
}

// Runs the full workload on one service, Submit + RunNext per request
// (InjectedCrash propagates to the caller).
std::vector<Reply> RunWorkload(TrialService& service) {
  std::vector<Reply> replies;
  for (const Request& request : Workload()) {
    std::optional<Reply> immediate = service.Submit(request);
    if (!immediate.has_value()) immediate = service.RunNext();
    replies.push_back(std::move(*immediate));
  }
  return replies;
}

// Helper dirs take a per-TEST tag: gtest_discover_tests runs each TEST
// as its own ctest process, so parallel ctest would otherwise have two
// tests remove_all-ing the same directory out from under each other.
std::vector<std::string> BaselineLines(const std::string& tag) {
  resilience::FakeClock clock;
  TrialService service(Options(FreshDir("svc_oracle_baseline_" + tag),
                               RealFs::Instance(), &clock));
  std::vector<std::string> lines;
  for (const Reply& reply : RunWorkload(service)) {
    EXPECT_EQ(reply.status, ReplyStatus::kOk);
    lines.push_back(NormalizedLine(reply));
  }
  return lines;
}

// Counting pass: the registered failpoints of the service workload.
std::vector<std::pair<FailOp, std::int64_t>> EnumerateFailpoints(
    const std::string& tag) {
  resilience::FakeClock clock;
  FaultingFs counter(RealFs::Instance());
  TrialService service(
      Options(FreshDir("svc_oracle_enumerate_" + tag), &counter, &clock));
  (void)RunWorkload(service);
  std::vector<std::pair<FailOp, std::int64_t>> points;
  for (FailOp op : {FailOp::kRead, FailOp::kWrite, FailOp::kSync,
                    FailOp::kRename, FailOp::kRemove}) {
    for (std::int64_t hit = 0; hit < counter.HitCount(op); ++hit) {
      points.emplace_back(op, hit);
    }
  }
  return points;
}

void ExpectNoTornFiles(const std::string& dir, const std::string& label) {
  for (const auto& entry : stdfs::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp")
        << label << ": torn temp file " << entry.path();
  }
}

TEST(ServiceOracle, WorkloadRegistersEnoughFailpoints) {
  // Two recomputes (each: miss lookup, checkpoint probe, ~3 checkpoints
  // of write+sync+rename, entry insert, checkpoint remove) plus one hit
  // lookup.  A shrunken enumeration means the sweeps below lost coverage.
  EXPECT_GE(EnumerateFailpoints("count").size(), 25u);
}

TEST(ServiceOracle, RebootAfterCrashAtEveryFailpointAnswersIdentically) {
  const std::vector<std::string> baseline = BaselineLines("crash");
  for (const auto& [op, hit] : EnumerateFailpoints("crash")) {
    const std::string label = FailOpName(op) + "@" + std::to_string(hit);
    const std::string dir = FreshDir("svc_oracle_crash");

    // Incarnation 1: die exactly at this failpoint.
    FailPlan plan;
    plan.Crash(op, hit, hit);
    FaultingFs fault_fs(RealFs::Instance(), plan);
    {
      resilience::FakeClock clock;
      TrialService service(Options(dir, &fault_fs, &clock));
      EXPECT_THROW((void)RunWorkload(service), InjectedCrash) << label;
    }
    EXPECT_EQ(fault_fs.SpecFires().at(0), 1) << label;

    // Incarnation 2: reboot faultless over the surviving cache dir and
    // replay the whole workload.
    resilience::FakeClock clock;
    TrialService service(Options(dir, RealFs::Instance(), &clock));
    const std::vector<Reply> replies = RunWorkload(service);
    ASSERT_EQ(replies.size(), baseline.size()) << label;
    for (std::size_t i = 0; i < replies.size(); ++i) {
      EXPECT_EQ(replies[i].status, ReplyStatus::kOk) << label;
      EXPECT_EQ(NormalizedLine(replies[i]), baseline[i])
          << label << ": crash-and-reboot changed request " << i;
    }
    ExpectNoTornFiles(dir, label);
  }
}

TEST(ServiceOracle, FailureAtEveryFailpointDegradesGracefully) {
  const std::vector<std::string> baseline = BaselineLines("fail");
  for (const auto& [op, hit] : EnumerateFailpoints("fail")) {
    const std::string label = FailOpName(op) + "@" + std::to_string(hit);
    const std::string dir = FreshDir("svc_oracle_fail");
    FailPlan plan;
    plan.Fail(op, hit, hit);
    FaultingFs fault_fs(RealFs::Instance(), plan);
    resilience::FakeClock clock;
    TrialService service(Options(dir, &fault_fs, &clock));
    std::vector<Reply> replies;
    // An ordinary I/O failure must never escape as an exception.
    EXPECT_NO_THROW(replies = RunWorkload(service)) << label;
    ASSERT_EQ(replies.size(), baseline.size()) << label;
    for (std::size_t i = 0; i < replies.size(); ++i) {
      EXPECT_EQ(replies[i].status, ReplyStatus::kOk) << label;
      EXPECT_EQ(NormalizedLine(replies[i]), baseline[i])
          << label << ": a handled I/O failure changed request " << i;
    }
    ExpectNoTornFiles(dir, label);
  }
}

TEST(ServiceOracle, RotAtEveryReadQuarantinesAndRecomputes) {
  const std::vector<std::string> baseline = BaselineLines("rot");
  resilience::FakeClock enumerate_clock;
  FaultingFs counter(RealFs::Instance());
  {
    TrialService service(
        Options(FreshDir("svc_oracle_rot_count"), &counter, &enumerate_clock));
    (void)RunWorkload(service);
  }
  for (const bool truncate : {false, true}) {
    for (std::int64_t hit = 0; hit < counter.HitCount(FailOp::kRead); ++hit) {
      const std::string label =
          (truncate ? "truncate@" : "corrupt@") + std::to_string(hit);
      const std::string dir = FreshDir("svc_oracle_rot");
      FailPlan plan(/*seed=*/7);
      if (truncate) {
        plan.Truncate(hit, hit, 0.5);
      } else {
        plan.Corrupt(hit, hit, 3);
      }
      FaultingFs fault_fs(RealFs::Instance(), plan);
      resilience::FakeClock clock;
      TrialService service(Options(dir, &fault_fs, &clock));
      std::vector<Reply> replies;
      EXPECT_NO_THROW(replies = RunWorkload(service)) << label;
      ASSERT_EQ(replies.size(), baseline.size()) << label;
      for (std::size_t i = 0; i < replies.size(); ++i) {
        EXPECT_EQ(replies[i].status, ReplyStatus::kOk) << label;
        EXPECT_EQ(NormalizedLine(replies[i]), baseline[i])
            << label << ": damaged bytes reached the reply for request " << i;
      }
    }
  }
}

}  // namespace
}  // namespace noisybeeps::service
