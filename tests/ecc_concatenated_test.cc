#include "ecc/concatenated.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "ecc/codebook.h"
#include "ecc/hadamard.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

std::shared_ptr<const BinaryCode> ByteInner() {
  // 256-message random codebook of 48 bits: rate 1/6 inner code.
  return std::make_shared<CodebookCode>(CodebookCode::Random(256, 48, 77));
}

TEST(ConcatenatedCode, RejectsNonByteInner) {
  EXPECT_THROW(
      ConcatenatedCode(ReedSolomon(10, 6),
                       std::make_shared<CodebookCode>(
                           CodebookCode::Random(128, 32, 1))),
      std::invalid_argument);
  EXPECT_THROW(ConcatenatedCode(ReedSolomon(10, 6), nullptr),
               std::invalid_argument);
}

TEST(ConcatenatedCode, CleanRoundTrip) {
  const ConcatenatedCode code(ReedSolomon(12, 8), ByteInner());
  EXPECT_EQ(code.data_bytes(), 8);
  EXPECT_EQ(code.codeword_bits(), 12u * 48u);
  Rng rng(70);
  std::vector<std::uint8_t> data(8);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  const auto decoded = code.Decode(code.Encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ConcatenatedCode, HadamardInnerRoundTrip) {
  const ConcatenatedCode code(ReedSolomon(10, 4),
                              std::make_shared<HadamardCode>(8));
  Rng rng(71);
  std::vector<std::uint8_t> data(4);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  const auto decoded = code.Decode(code.Encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ConcatenatedCode, SurvivesBitNoise) {
  // 5% BSC noise: inner decodes fix most symbols, RS mops up the rest.
  const ConcatenatedCode code(ReedSolomon(16, 8), ByteInner());
  Rng rng(72);
  int failures = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<std::uint8_t> data(8);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    BitString word = code.Encode(data);
    for (std::size_t i = 0; i < word.size(); ++i) {
      if (rng.Bernoulli(0.05)) word.Set(i, !word[i]);
    }
    const auto decoded = code.Decode(word);
    if (!decoded.has_value() || *decoded != data) ++failures;
  }
  EXPECT_LE(failures, 2);
}

TEST(ConcatenatedCode, SurvivesSymbolBursts) {
  // Wipe out 4 entire inner blocks (4 symbol errors); RS(16,8) fixes them.
  const ConcatenatedCode code(ReedSolomon(16, 8), ByteInner());
  Rng rng(73);
  std::vector<std::uint8_t> data(8);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  BitString word = code.Encode(data);
  for (int s = 2; s < 6; ++s) {
    for (std::size_t b = s * 48; b < (s + 1) * 48u; ++b) {
      word.Set(b, rng.Bit());
    }
  }
  const auto decoded = code.Decode(word);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ConcatenatedCode, WrongLengthThrows) {
  const ConcatenatedCode code(ReedSolomon(12, 8), ByteInner());
  EXPECT_THROW((void)code.Decode(BitString(10)), std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
