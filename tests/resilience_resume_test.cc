// The kill-and-resume reproducibility audit -- the acceptance criterion of
// the resilience layer.  For three representative workloads (repetition
// simulation, the hierarchical A_l scheme, and a faulted rewind run), an
// interrupted run -- checkpoint written, RunInterrupted thrown mid-sweep,
// then resumed in a fresh engine at a DIFFERENT worker count -- must
// produce bit-identical per-trial results and an identical deterministic
// RunReport fingerprint versus an uninterrupted baseline.  Trial
// generators are pure functions of (parent state, index) and retry seeds
// pure functions of (trial state, attempt), so no interrupt/resume
// schedule may perturb a single bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/progress_measure.h"
#include "resilience/clock.h"
#include "channel/correlated.h"
#include "coding/hierarchical_sim.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "fault/fault_plan.h"
#include "resilience/checkpoint.h"
#include "resilience/resilient_trials.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps::resilience {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

// One trial's digest: a full-result fingerprint plus the verdict ladder
// mapped into the resilience taxonomy, so degraded/failed simulations
// exercise the watchdog + report plumbing, not just the happy path.
struct SimPoint {
  std::uint64_t fingerprint = 0;
  std::uint8_t status = 0;  // SimulationStatus as a wire byte
  std::int64_t rounds = 0;

  friend bool operator==(const SimPoint&, const SimPoint&) = default;
};

struct SimPointAdapter {
  [[nodiscard]] std::string Encode(const SimPoint& p) const {
    std::string out;
    AppendU64(out, p.fingerprint);
    AppendU64(out, p.status);
    AppendU64(out, static_cast<std::uint64_t>(p.rounds));
    return out;
  }
  [[nodiscard]] SimPoint Decode(std::string_view bytes) const {
    ByteReader reader(bytes);
    SimPoint p;
    p.fingerprint = reader.U64();
    p.status = static_cast<std::uint8_t>(reader.U64());
    p.rounds = static_cast<std::int64_t>(reader.U64());
    return p;
  }
  [[nodiscard]] TrialAssessment Assess(const SimPoint& p) const {
    TrialAssessment assessment;
    // kOk / kDegraded are accepted outcomes; kFailed would be retried.
    // (These workloads never fail outright at the chosen noise levels, so
    // the resume audit is not entangled with retry nondeterminism.)
    if (p.status == 2) assessment.verdict = TrialVerdict::kFailed;
    assessment.rounds_used = p.rounds;
    return assessment;
  }
};

// FNV-1a over the full SimulationResult (mirrors the determinism audit).
class Fingerprint {
 public:
  void Mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ = (hash_ ^ ((v >> (8 * byte)) & 0xff)) * 0x100000001b3ULL;
    }
  }
  void MixBits(const BitString& bits) {
    Mix(bits.size());
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      word = (word << 1) | static_cast<std::uint64_t>(bits[i]);
      if (i % 64 == 63) {
        Mix(word);
        word = 0;
      }
    }
    Mix(word);
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;
};

SimPoint PointFromSimulation(const SimulationResult& result) {
  Fingerprint fp;
  for (const BitString& t : result.transcripts) fp.MixBits(t);
  for (const PartyOutput& out : result.outputs) {
    fp.Mix(out.size());
    for (std::uint64_t word : out) fp.Mix(word);
  }
  fp.Mix(static_cast<std::uint64_t>(result.noisy_rounds_used));
  fp.Mix(static_cast<std::uint64_t>(result.verdict.status));
  for (int a : result.verdict.agreement) {
    fp.Mix(static_cast<std::uint64_t>(a));
  }
  SimPoint p;
  p.fingerprint = fp.value();
  p.status = static_cast<std::uint8_t>(result.verdict.status);
  p.rounds = result.noisy_rounds_used;
  return p;
}

SimPoint RepetitionBody(int, Rng& rng) {
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const CorrelatedNoisyChannel channel(0.1);
  const RepetitionSimulator sim;
  return PointFromSimulation(sim.Simulate(*protocol, channel, rng));
}

SimPoint HierarchicalBody(int, Rng& rng) {
  const InputSetInstance instance = SampleInputSet(6, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const CorrelatedNoisyChannel channel(0.05);
  const HierarchicalSimulator sim;
  return PointFromSimulation(sim.Simulate(*protocol, channel, rng));
}

SimPoint FaultedRewindBody(int, Rng& rng) {
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const CorrelatedNoisyChannel channel(0.05);
  FaultPlan plan(99);
  plan.CrashStop(1, 400)
      .Babbler(2, 0, 200, 0.3)
      .DeafReceiver(0, 50, 120)
      .Sleepy(3, 10, 60)
      .StuckBeeper(4, 5, 25);
  RewindSimOptions options;
  options.max_rounds = 20000;
  const RewindSimulator sim(options);
  return PointFromSimulation(sim.Simulate(*protocol, channel, plan, rng));
}

constexpr int kTrials = 12;

// Uninterrupted baseline -> interrupted run (checkpoint, then a simulated
// SIGKILL via RunInterrupted) -> resume in a FRESH engine at a different
// worker count.  Results and deterministic report must be bit-identical.
template <typename Body>
void AuditKillAndResume(const char* name, std::uint64_t seed, Body&& body) {
  const SimPointAdapter adapter;
  const std::uint64_t config_hash = Fnv1a64(name);

  ResilienceOptions baseline_opts;
  baseline_opts.num_workers = 1;
  Rng baseline_rng(seed);
  const RunOutput<SimPoint> baseline =
      ResilientTrials(kTrials, baseline_rng, body, adapter, baseline_opts);
  const std::uint64_t baseline_parent_next = baseline_rng.NextU64();

  const std::string path =
      TempPath(std::string("resume_audit_") + name + ".nbckpt");
  fs::remove(path);

  // Phase 1: run with small checkpoint batches, killed after the second
  // checkpoint with most of the sweep still pending.
  ResilienceOptions interrupted_opts;
  interrupted_opts.checkpoint_path = path;
  interrupted_opts.checkpoint_every = 3;
  interrupted_opts.config_hash = config_hash;
  interrupted_opts.halt_after_checkpoints = 2;
  interrupted_opts.num_workers = 2;
  {
    Rng rng(seed);
    EXPECT_THROW(
        (void)ResilientTrials(kTrials, rng, body, adapter, interrupted_opts),
        RunInterrupted)
        << name;
  }
  ASSERT_TRUE(fs::exists(path)) << name << ": no checkpoint survived the kill";

  // Phase 2: fresh engine, fresh parent Rng, DIFFERENT worker count.
  ResilienceOptions resume_opts = interrupted_opts;
  resume_opts.halt_after_checkpoints = 0;
  resume_opts.num_workers = 4;
  Rng resume_rng(seed);
  const RunOutput<SimPoint> resumed =
      ResilientTrials(kTrials, resume_rng, body, adapter, resume_opts);

  EXPECT_EQ(resumed.results, baseline.results)
      << name << ": kill-and-resume changed per-trial results";
  EXPECT_EQ(resumed.report.Fingerprint(), baseline.report.Fingerprint())
      << name << ": deterministic report fields diverged after resume";
  EXPECT_EQ(resumed.report.total_trials, baseline.report.total_trials);
  EXPECT_EQ(resumed.report.completed, baseline.report.completed);
  EXPECT_EQ(resumed.report.attempts, baseline.report.attempts);
  // The resume DID restore prior work -- the audit is not vacuous.
  EXPECT_EQ(resumed.report.resumed_trials, 6) << name;
  EXPECT_GT(resumed.report.checkpoints_written, 0) << name;
  // The parent stream advances identically (sweeps can continue past the
  // resilient block without divergence).
  EXPECT_EQ(resume_rng.NextU64(), baseline_parent_next) << name;

  // Trials are genuinely stochastic: the audit would catch a real
  // divergence.
  int distinct = 0;
  for (std::size_t i = 1; i < resumed.results.size(); ++i) {
    distinct += resumed.results[i].fingerprint != resumed.results[0].fingerprint;
  }
  EXPECT_GT(distinct, 0) << name;
  fs::remove(path);
}

TEST(KillAndResumeAudit, RepetitionSimulation) {
  AuditKillAndResume("repetition-sim", 1101, RepetitionBody);
}

TEST(KillAndResumeAudit, HierarchicalSimulation) {
  AuditKillAndResume("hierarchical-sim", 1303, HierarchicalBody);
}

TEST(KillAndResumeAudit, FaultedRewindSimulation) {
  AuditKillAndResume("faulted-rewind-sim", 1707, FaultedRewindBody);
}

TEST(KillAndResumeAudit, ResumeAfterEveryPossibleKillPoint) {
  // Exhaustive over a cheap workload: kill after checkpoint 1, 2, ...;
  // every resume must land on the same bits.
  const SimPointAdapter adapter;
  const auto body = [](int t, Rng& rng) {
    SimPoint p;
    p.fingerprint = rng.NextU64() ^ static_cast<std::uint64_t>(t);
    p.rounds = static_cast<std::int64_t>(rng.UniformInt(100));
    return p;
  };
  constexpr int kCheapTrials = 20;
  ResilienceOptions base;
  base.num_workers = 1;
  Rng baseline_rng(4242);
  const RunOutput<SimPoint> baseline =
      ResilientTrials(kCheapTrials, baseline_rng, body, adapter, base);

  const std::string path = TempPath("resume_audit_every_kill.nbckpt");
  for (int kill_after = 1; kill_after <= 6; ++kill_after) {
    fs::remove(path);
    ResilienceOptions opts;
    opts.checkpoint_path = path;
    opts.checkpoint_every = 3;
    opts.config_hash = Fnv1a64("every-kill");
    opts.halt_after_checkpoints = kill_after;
    opts.num_workers = 3;
    {
      Rng rng(4242);
      EXPECT_THROW((void)ResilientTrials(kCheapTrials, rng, body, adapter,
                                         opts),
                   RunInterrupted)
          << kill_after;
    }
    opts.halt_after_checkpoints = 0;
    opts.num_workers = kill_after % 4 + 1;  // vary the resume worker count
    Rng rng(4242);
    const RunOutput<SimPoint> resumed =
        ResilientTrials(kCheapTrials, rng, body, adapter, opts);
    EXPECT_EQ(resumed.results, baseline.results) << kill_after;
    EXPECT_EQ(resumed.report.Fingerprint(), baseline.report.Fingerprint())
        << kill_after;
    EXPECT_EQ(resumed.report.resumed_trials, 3 * kill_after) << kill_after;
  }
  fs::remove(path);
}

TEST(KillAndResumeAudit, DoubleKillThenResume) {
  // Kill, resume-and-kill again, then finish: checkpoints compose.
  const SimPointAdapter adapter;
  const auto body = [](int t, Rng& rng) {
    SimPoint p;
    p.fingerprint = rng.NextU64() + static_cast<std::uint64_t>(t);
    return p;
  };
  constexpr int kCheapTrials = 16;
  ResilienceOptions base;
  base.num_workers = 1;
  Rng baseline_rng(555);
  const RunOutput<SimPoint> baseline =
      ResilientTrials(kCheapTrials, baseline_rng, body, adapter, base);

  const std::string path = TempPath("resume_audit_double_kill.nbckpt");
  fs::remove(path);
  ResilienceOptions opts;
  opts.checkpoint_path = path;
  opts.checkpoint_every = 2;
  opts.config_hash = Fnv1a64("double-kill");
  opts.halt_after_checkpoints = 1;
  opts.num_workers = 2;
  for (int kill = 0; kill < 2; ++kill) {
    Rng rng(555);
    EXPECT_THROW((void)ResilientTrials(kCheapTrials, rng, body, adapter, opts),
                 RunInterrupted)
        << kill;
  }
  opts.halt_after_checkpoints = 0;
  opts.num_workers = 4;
  Rng rng(555);
  const RunOutput<SimPoint> resumed =
      ResilientTrials(kCheapTrials, rng, body, adapter, opts);
  EXPECT_EQ(resumed.results, baseline.results);
  EXPECT_EQ(resumed.report.Fingerprint(), baseline.report.Fingerprint());
  // First kill banked 2 trials, second banked 2 more.
  EXPECT_EQ(resumed.report.resumed_trials, 4);
  fs::remove(path);
}

TEST(KillAndResumeAudit, CompletedCheckpointShortCircuits) {
  // Resuming a finished sweep re-runs nothing and reproduces the report's
  // deterministic fields.
  const SimPointAdapter adapter;
  const auto body = [](int, Rng& rng) {
    SimPoint p;
    p.fingerprint = rng.NextU64();
    return p;
  };
  const std::string path = TempPath("resume_audit_complete.nbckpt");
  fs::remove(path);
  ResilienceOptions opts;
  opts.checkpoint_path = path;
  opts.config_hash = Fnv1a64("complete");
  opts.num_workers = 2;
  Rng first_rng(808);
  const RunOutput<SimPoint> first =
      ResilientTrials(10, first_rng, body, adapter, opts);
  Rng second_rng(808);
  const RunOutput<SimPoint> second =
      ResilientTrials(10, second_rng, body, adapter, opts);
  EXPECT_EQ(second.results, first.results);
  EXPECT_EQ(second.report.resumed_trials, 10);
  EXPECT_EQ(second.report.Fingerprint(), first.report.Fingerprint());
  fs::remove(path);
}

// --- cooperative cancel and deadline (PR 8) -------------------------------
//
// Both seams stop the run at a BATCH BOUNDARY, after the checkpoint
// write: stopping costs progress, never results.  The audits below prove
// the other half of that promise -- a cancelled or expired run resumes
// bit-identically onto the baseline.

TEST(CancelAndDeadlineAudit, CancelSetAtEntryStopsBeforeAnyTrial) {
  const SimPointAdapter adapter;
  std::atomic<bool> cancel{true};
  ResilienceOptions opts;
  opts.cancel = &cancel;
  Rng rng(111);
  EXPECT_THROW(
      (void)ResilientTrials(kTrials, rng, RepetitionBody, adapter, opts),
      RunCancelled);
}

TEST(CancelAndDeadlineAudit, MidRunCancelCheckpointsThenResumesIdentically) {
  const SimPointAdapter adapter;
  ResilienceOptions baseline_opts;
  baseline_opts.num_workers = 1;
  Rng baseline_rng(222);
  const RunOutput<SimPoint> baseline = ResilientTrials(
      kTrials, baseline_rng, RepetitionBody, adapter, baseline_opts);

  const std::string path = TempPath("cancel_audit.nbckpt");
  fs::remove(path);
  std::atomic<bool> cancel{false};
  // The body pulls the flag mid-sweep, as a signal handler would: the
  // engine must finish the current batch, write its checkpoint, and only
  // THEN throw.
  const auto cancelling_body = [&](int t, Rng& rng) {
    if (t == 5) cancel.store(true, std::memory_order_release);
    return RepetitionBody(t, rng);
  };
  ResilienceOptions cancelled_opts;
  cancelled_opts.checkpoint_path = path;
  cancelled_opts.checkpoint_every = 3;
  cancelled_opts.config_hash = Fnv1a64("cancel-audit");
  cancelled_opts.num_workers = 2;
  cancelled_opts.cancel = &cancel;
  {
    Rng rng(222);
    EXPECT_THROW((void)ResilientTrials(kTrials, rng, cancelling_body, adapter,
                                       cancelled_opts),
                 RunCancelled);
  }
  ASSERT_TRUE(fs::exists(path)) << "cancel must leave a resumable checkpoint";
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Clear the flag and resume at a different worker count.
  cancel.store(false);
  ResilienceOptions resume_opts = cancelled_opts;
  resume_opts.num_workers = 4;
  Rng resume_rng(222);
  const RunOutput<SimPoint> resumed = ResilientTrials(
      kTrials, resume_rng, RepetitionBody, adapter, resume_opts);
  EXPECT_EQ(resumed.results, baseline.results)
      << "cancel-and-resume changed per-trial results";
  EXPECT_EQ(resumed.report.Fingerprint(), baseline.report.Fingerprint());
  EXPECT_GT(resumed.report.resumed_trials, 0) << "the audit is vacuous";
  fs::remove(path);
}

TEST(CancelAndDeadlineAudit, DeadlineStopsAtBatchBoundaryThenResumes) {
  const SimPointAdapter adapter;
  ResilienceOptions baseline_opts;
  baseline_opts.num_workers = 1;
  Rng baseline_rng(333);
  const RunOutput<SimPoint> baseline = ResilientTrials(
      kTrials, baseline_rng, RepetitionBody, adapter, baseline_opts);

  const std::string path = TempPath("deadline_audit.nbckpt");
  fs::remove(path);
  // Virtual time: each trial "takes" 10ms, so the 40ms deadline expires
  // mid-sweep and the engine stops at the next batch boundary.
  FakeClock clock;
  const auto slow_body = [&](int t, Rng& rng) {
    clock.Advance(10);
    return RepetitionBody(t, rng);
  };
  ResilienceOptions expired_opts;
  expired_opts.checkpoint_path = path;
  expired_opts.checkpoint_every = 3;
  expired_opts.config_hash = Fnv1a64("deadline-audit");
  expired_opts.num_workers = 1;
  expired_opts.clock = &clock;
  expired_opts.deadline_at_millis = 40;
  {
    Rng rng(333);
    EXPECT_THROW(
        (void)ResilientTrials(kTrials, rng, slow_body, adapter, expired_opts),
        RunDeadlineExceeded);
  }
  ASSERT_TRUE(fs::exists(path))
      << "deadline expiry must leave a resumable checkpoint";

  // A fresh run with a roomy deadline resumes onto the baseline.
  ResilienceOptions resume_opts = expired_opts;
  resume_opts.deadline_at_millis = 0;
  resume_opts.num_workers = 4;
  Rng resume_rng(333);
  const RunOutput<SimPoint> resumed = ResilientTrials(
      kTrials, resume_rng, RepetitionBody, adapter, resume_opts);
  EXPECT_EQ(resumed.results, baseline.results)
      << "deadline-and-resume changed per-trial results";
  EXPECT_EQ(resumed.report.Fingerprint(), baseline.report.Fingerprint());
  EXPECT_GT(resumed.report.resumed_trials, 0) << "the audit is vacuous";
  fs::remove(path);
}

TEST(CancelAndDeadlineAudit, FinishedFinalBatchBeatsTheDeadline) {
  // The deadline bounds time-to-abandon, never time-to-win: a run whose
  // last trial completes after the deadline still returns its results.
  const SimPointAdapter adapter;
  FakeClock clock;
  const auto slow_body = [&](int t, Rng& rng) {
    clock.Advance(1000);  // every trial blows way past the deadline
    return RepetitionBody(t, rng);
  };
  ResilienceOptions opts;
  opts.num_workers = 1;
  opts.clock = &clock;
  opts.deadline_at_millis = 500;
  // No checkpointing: one batch covers the whole sweep, so the only
  // check_stop with work remaining is at entry (clock still at 0).
  Rng rng(444);
  RunOutput<SimPoint> run;
  EXPECT_NO_THROW(
      run = ResilientTrials(kTrials, rng, slow_body, adapter, opts));
  EXPECT_EQ(static_cast<int>(run.results.size()), kTrials);
}

}  // namespace
}  // namespace noisybeeps::resilience
