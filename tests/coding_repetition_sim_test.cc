#include "coding/repetition_sim.h"

#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "tasks/adaptive_find.h"
#include "tasks/input_set.h"
#include "tasks/leader_election.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(RepetitionSim, NoiselessChannelIsExact) {
  Rng rng(1);
  const NoiselessChannel channel;
  const RepetitionSimulator sim(RepetitionSimOptions{.rep_factor = 3});
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
  EXPECT_EQ(result.noisy_rounds_used, 3 * protocol->length());
  EXPECT_FALSE(result.budget_exhausted());
}

TEST(RepetitionSim, DefaultRepFactorScalesWithLogN) {
  const RepetitionSimulator sim(RepetitionSimOptions{.rep_c = 4});
  EXPECT_EQ(sim.EffectiveRepFactor(2), 4 * 1 + 1);
  EXPECT_EQ(sim.EffectiveRepFactor(16), 4 * 4 + 1);
  EXPECT_EQ(sim.EffectiveRepFactor(1024), 4 * 10 + 1);
}

TEST(RepetitionSim, RecoversInputSetUnderCorrelatedNoise) {
  Rng rng(2);
  const CorrelatedNoisyChannel channel(0.1);
  const RepetitionSimulator sim;
  int correct = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(16, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += result.AllMatch(ReferenceTranscript(*protocol)) &&
               InputSetAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(RepetitionSim, RecoversAdaptiveProtocol) {
  // The rewind-free simulator still handles adaptive protocols: each
  // logical round's beep is recomputed from the majority-decoded prefix.
  Rng rng(3);
  const CorrelatedNoisyChannel channel(0.1);
  const RepetitionSimulator sim(RepetitionSimOptions{.rep_c = 5});
  int correct = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    const AdaptiveFindInstance instance = SampleAdaptiveFind(64, 0.15, rng);
    const auto protocol = MakeAdaptiveFindProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += AdaptiveFindAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(RepetitionSim, WorksOnIndependentNoise) {
  Rng rng(4);
  const IndependentNoisyChannel channel(0.1);
  const RepetitionSimulator sim(RepetitionSimOptions{.rep_c = 5});
  int correct = 0;
  constexpr int kTrials = 15;
  for (int t = 0; t < kTrials; ++t) {
    const LeaderElectionInstance instance = SampleLeaderElection(16, 10, rng);
    const auto protocol = MakeLeaderElectionProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += LeaderElectionAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(RepetitionSim, InsufficientRepetitionFailsUnderHeavyNoise) {
  // With r = 1 the simulator degenerates to direct noisy execution.
  Rng rng(5);
  const OneSidedUpChannel channel(1.0 / 3.0);
  const RepetitionSimulator sim(RepetitionSimOptions{.rep_factor = 1});
  int correct = 0;
  constexpr int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(16, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += result.AllMatch(ReferenceTranscript(*protocol));
  }
  EXPECT_LE(correct, 2);
}

TEST(RepetitionSim, OverheadIsExactlyRepFactor) {
  Rng rng(6);
  const CorrelatedNoisyChannel channel(0.05);
  for (int r : {3, 9, 21}) {
    const RepetitionSimulator sim(RepetitionSimOptions{.rep_factor = r});
    const InputSetInstance instance = SampleInputSet(4, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    EXPECT_EQ(result.noisy_rounds_used,
              static_cast<std::int64_t>(r) * protocol->length());
  }
}

TEST(RepetitionSim, RejectsBadOptions) {
  EXPECT_THROW(RepetitionSimulator(RepetitionSimOptions{.rep_factor = -1}),
               std::invalid_argument);
  EXPECT_THROW(
      RepetitionSimulator(RepetitionSimOptions{.rep_factor = 0, .rep_c = 0}),
      std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
