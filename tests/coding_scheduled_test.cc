// The scheduled-ownership (EKS18-style) regime: for broadcast-like
// protocols with a pre-assigned unique speaker per round, the owner
// machinery is free and simulation is cheap even under two-sided noise --
// Section 1.3/2.1's contrast with the noisy broadcast channel, made
// executable.
#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "coding/hierarchical_sim.h"
#include "coding/rewind_sim.h"
#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "util/math.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(ScheduledSim, DefaultsAreTheCheapPreset) {
  const RewindSimulator sim(
      RewindSimOptions::Scheduled(BitExchangeSchedule(32, 4)));
  EXPECT_EQ(sim.EffectiveChunkLen(32), 8);
  EXPECT_EQ(sim.EffectiveRepFactor(32), 1);
  EXPECT_EQ(sim.EffectiveFlagReps(32), 9);
}

TEST(ScheduledSim, NoiselessIsExactWithScheduleOwners) {
  Rng rng(1);
  const NoiselessChannel channel;
  const BitExchangeInstance instance = SampleBitExchange(6, 5, rng);
  const auto schedule = BitExchangeSchedule(6, 5);
  const RewindSimulator sim(RewindSimOptions::Scheduled(schedule));
  const auto protocol = MakeBitExchangeProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
  // Owners recorded are the schedule itself.
  for (std::size_t m = 0; m < result.owners[0].size(); ++m) {
    EXPECT_EQ(result.owners[0][m], schedule[m]) << m;
  }
  // No owner-finding rounds were spent.
  EXPECT_EQ(result.phase_rounds.count("owner-finding"), 0u);
}

TEST(ScheduledSim, RecoversUnderTwoSidedNoise) {
  Rng rng(2);
  const CorrelatedNoisyChannel channel(0.05);
  int correct = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const BitExchangeInstance instance = SampleBitExchange(10, 8, rng);
    const RewindSimulator sim(
        RewindSimOptions::Scheduled(BitExchangeSchedule(10, 8)));
    const auto protocol = MakeBitExchangeProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += !result.budget_exhausted() &&
               BitExchangeAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(ScheduledSim, OverheadIsConstantInN) {
  // The headline: blowup flat in n under TWO-SIDED noise, where the
  // unscheduled scheme pays Theta(log n).
  Rng rng(3);
  const CorrelatedNoisyChannel channel(0.05);
  std::vector<double> overhead;
  for (int n : {8, 128}) {
    const BitExchangeInstance instance = SampleBitExchange(n, 8, rng);
    const RewindSimulator sim(
        RewindSimOptions::Scheduled(BitExchangeSchedule(n, 8)));
    const auto protocol = MakeBitExchangeProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol))) << n;
    overhead.push_back(static_cast<double>(result.noisy_rounds_used) /
                       protocol->length());
  }
  EXPECT_LT(overhead[1], overhead[0] * 1.5 + 1.0);
  EXPECT_LT(overhead[1], 10.0);  // constant, far below 3*log2(128)+1
}

TEST(ScheduledSim, HierarchicalVariantHandlesLongWorkloads) {
  Rng rng(4);
  const CorrelatedNoisyChannel channel(0.05);
  const BitExchangeInstance instance = SampleBitExchange(8, 48, rng);
  HierarchicalSimOptions options;
  options.base = RewindSimOptions::Scheduled(BitExchangeSchedule(8, 48));
  const HierarchicalSimulator sim(options);
  const auto protocol = MakeBitExchangeProtocol(instance);  // T = 384
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_FALSE(result.budget_exhausted());
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
}

TEST(ScheduledSim, RejectsWrongScheduleShapes) {
  Rng rng(5);
  const NoiselessChannel channel;
  const BitExchangeInstance instance = SampleBitExchange(4, 3, rng);
  const auto protocol = MakeBitExchangeProtocol(instance);
  // Too short.
  {
    const RewindSimulator sim(
        RewindSimOptions::Scheduled(std::vector<int>(5, 0)));
    EXPECT_THROW((void)sim.Simulate(*protocol, channel, rng),
                 std::invalid_argument);
  }
  // Owner out of range.
  {
    std::vector<int> bad = BitExchangeSchedule(4, 3);
    bad[0] = 4;
    const RewindSimulator sim(RewindSimOptions::Scheduled(bad));
    EXPECT_THROW((void)sim.Simulate(*protocol, channel, rng),
                 std::invalid_argument);
  }
  // Wrong owner: some party beeps a round it does not own.
  {
    std::vector<int> rotated = BitExchangeSchedule(4, 3);
    std::rotate(rotated.begin(), rotated.begin() + 3, rotated.end());
    const RewindSimulator sim(RewindSimOptions::Scheduled(rotated));
    // Only detectable when the disowned party actually beeps; the
    // validator replays the reference execution, so a mismatch throws
    // unless the instance happens to beep nothing in the affected rounds.
    bool threw = false;
    try {
      (void)sim.Simulate(*protocol, channel, rng);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
    // With random 3-bit payloads all-zero owned blocks are rare but
    // possible; accept either a throw or a correct run.
    if (!threw) SUCCEED();
  }
}

TEST(ScheduledSim, NonScheduledProtocolIsRejected) {
  // InputSet has no static unique-speaker schedule (duplicate inputs beep
  // together); the validator must catch it for such instances.
  Rng rng(6);
  const NoiselessChannel channel;
  InputSetInstance instance;
  instance.inputs = {2, 2, 5};  // parties 0 and 1 beep together in round 2
  const auto protocol = MakeInputSetProtocol(instance);
  std::vector<int> schedule(protocol->length(), 0);
  const RewindSimulator sim(RewindSimOptions::Scheduled(schedule));
  EXPECT_THROW((void)sim.Simulate(*protocol, channel, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
