// Stream-identity audit for the channel hot path.
//
// PR "stream-identical channel hot-path optimisation" replaced the
// per-sample `UniformDouble() < p` coin flips in every Deliver
// implementation with precomputed fixed-point BernoulliSampler draws.
// The whole point of that change is that NO random stream moves: these
// tests drive every noisy channel from a fixed seed and check the
// delivered bits (a) against a reference implementation that still uses
// the historical double-compare path, draw by draw, and (b) against
// pinned seed-state goldens, so a future "optimisation" that perturbs
// either side fails loudly rather than silently invalidating every
// number in EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "channel/adversary.h"
#include "channel/burst.h"
#include "channel/collision.h"
#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/one_sided.h"
#include "channel/shared_randomness.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

constexpr std::uint64_t kSeed = 20260805;
constexpr int kParties = 5;
constexpr int kRounds = 64;

// Deterministic beeper count for round r: cycles through 0, 1, 2, 0, ...
// so every channel sees silence, lone beeps, and collisions.
int BeepersAt(int r) { return r % 3; }

// The historical coin flip, byte for byte: one UniformDouble per draw.
bool RefFlip(Rng& rng, double p) { return rng.UniformDouble() < p; }

// Runs `channel` for kRounds from kSeed and renders party 0's received
// bits as a '0'/'1' string.  For the independent channel every party's
// stream matters, so all parties' bits are concatenated round-major.
std::string DeliveredStream(const Channel& channel, bool all_parties = false) {
  Rng rng(kSeed);
  std::vector<std::uint8_t> received(kParties, 0);
  std::string stream;
  for (int r = 0; r < kRounds; ++r) {
    channel.Deliver(BeepersAt(r), received, rng);
    if (all_parties) {
      for (std::uint8_t bit : received) stream += bit != 0 ? '1' : '0';
    } else {
      stream += received[0] != 0 ? '1' : '0';
    }
  }
  return stream;
}

TEST(ChannelStream, IndependentMatchesHistoricalPath) {
  const double eps = 0.2;
  const IndependentNoisyChannel channel(eps);
  Rng ref(kSeed);
  std::string expected;
  for (int r = 0; r < kRounds; ++r) {
    const bool or_bit = BeepersAt(r) > 0;
    for (int i = 0; i < kParties; ++i) {
      expected += (or_bit != RefFlip(ref, eps)) ? '1' : '0';
    }
  }
  EXPECT_EQ(DeliveredStream(channel, /*all_parties=*/true), expected);
}

TEST(ChannelStream, OneSidedUpMatchesHistoricalPath) {
  const double eps = 1.0 / 3.0;
  const OneSidedUpChannel channel(eps);
  Rng ref(kSeed);
  std::string expected;
  for (int r = 0; r < kRounds; ++r) {
    // Short-circuit is part of the stream contract: no draw when someone
    // beeped.
    const bool out = BeepersAt(r) > 0 || RefFlip(ref, eps);
    expected += out ? '1' : '0';
  }
  EXPECT_EQ(DeliveredStream(channel), expected);
}

TEST(ChannelStream, OneSidedDownMatchesHistoricalPath) {
  const double eps = 0.25;
  const OneSidedDownChannel channel(eps);
  Rng ref(kSeed);
  std::string expected;
  for (int r = 0; r < kRounds; ++r) {
    const bool out = BeepersAt(r) > 0 && !RefFlip(ref, eps);
    expected += out ? '1' : '0';
  }
  EXPECT_EQ(DeliveredStream(channel), expected);
}

TEST(ChannelStream, CorrelatedMatchesHistoricalPath) {
  const double eps = 0.1;
  const CorrelatedNoisyChannel channel(eps);
  Rng ref(kSeed);
  std::string expected;
  for (int r = 0; r < kRounds; ++r) {
    const bool out = (BeepersAt(r) > 0) != RefFlip(ref, eps);
    expected += out ? '1' : '0';
  }
  EXPECT_EQ(DeliveredStream(channel), expected);
}

TEST(ChannelStream, CollisionMatchesHistoricalPath) {
  const double eps = 0.15;
  const CollisionAsSilenceChannel channel(eps);
  Rng ref(kSeed);
  std::string expected;
  for (int r = 0; r < kRounds; ++r) {
    const bool clean = BeepersAt(r) == 1;
    expected += (clean != RefFlip(ref, eps)) ? '1' : '0';
  }
  EXPECT_EQ(DeliveredStream(channel), expected);

  // eps == 0 must consume no randomness at all.
  const CollisionAsSilenceChannel noiseless(0.0);
  Rng before(kSeed);
  Rng after(kSeed);
  std::vector<std::uint8_t> received(kParties, 0);
  noiseless.Deliver(1, received, after);
  EXPECT_EQ(before.NextU64(), after.NextU64());
}

TEST(ChannelStream, AdversaryMatchesHistoricalPath) {
  const double eps = 0.3;
  for (CorrectionPolicy policy :
       {CorrectionPolicy::kNever, CorrectionPolicy::kCorrectDrops,
        CorrectionPolicy::kCorrectSpurious, CorrectionPolicy::kCorrectAll}) {
    const AdversarialCorrectionChannel channel(eps, policy);
    Rng ref(kSeed);
    std::string expected;
    for (int r = 0; r < kRounds; ++r) {
      const bool or_bit = BeepersAt(r) > 0;
      bool out = or_bit != RefFlip(ref, eps);
      if (out != or_bit) {
        const bool is_drop = or_bit;
        const bool revert =
            policy == CorrectionPolicy::kCorrectAll ||
            (policy == CorrectionPolicy::kCorrectDrops && is_drop) ||
            (policy == CorrectionPolicy::kCorrectSpurious && !is_drop);
        if (revert) out = or_bit;
      }
      expected += out ? '1' : '0';
    }
    EXPECT_EQ(DeliveredStream(channel), expected)
        << "policy=" << static_cast<int>(policy);
  }
}

TEST(ChannelStream, BurstMatchesHistoricalPath) {
  const double eps_good = 0.01, eps_bad = 0.4, p_gb = 0.2, p_bg = 0.5;
  const BurstNoisyChannel channel(eps_good, eps_bad, p_gb, p_bg);
  Rng ref(kSeed);
  std::string expected;
  bool bad = false;
  for (int r = 0; r < kRounds; ++r) {
    if (bad) {
      if (RefFlip(ref, p_bg)) bad = false;
    } else {
      if (RefFlip(ref, p_gb)) bad = true;
    }
    const bool out = (BeepersAt(r) > 0) != RefFlip(ref, bad ? eps_bad
                                                            : eps_good);
    expected += out ? '1' : '0';
  }
  EXPECT_EQ(DeliveredStream(channel), expected);
}

TEST(ChannelStream, SharedRandomnessMatchesHistoricalPath) {
  const double up_eps = 1.0 / 3.0, flip = 0.25;
  const SharedRandomnessOneSidedAdapter channel(up_eps, flip);
  Rng ref(kSeed);
  std::string expected;
  for (int r = 0; r < kRounds; ++r) {
    bool bit = BeepersAt(r) > 0 || RefFlip(ref, up_eps);
    if (bit && RefFlip(ref, flip)) bit = false;
    expected += bit ? '1' : '0';
  }
  EXPECT_EQ(DeliveredStream(channel), expected);
}

// Seed-state goldens: the exact party-0 streams at kSeed.  These pin the
// realized noise itself (not just new-vs-reference agreement), so a
// change to the Rng, the threshold computation, or a channel's draw
// ORDER fails here even if it changes both sides of the tests above in
// the same way.  If a change to these values is INTENTIONAL, every
// number in EXPERIMENTS.md needs re-measuring.
TEST(ChannelStream, GoldenStreamsArePinned) {
  EXPECT_EQ(DeliveredStream(CorrelatedNoisyChannel(0.1)),
            "0110110010110110110010110110110110110111100010110110110111110110");
  EXPECT_EQ(DeliveredStream(OneSidedUpChannel(1.0 / 3.0)),
            "0110110111110110110111111111111111110110110110110110110111110111");
  EXPECT_EQ(DeliveredStream(IndependentNoisyChannel(0.2)),
            "0110110110011110101110100110100110100010111010110110100111110100");
  EXPECT_EQ(DeliveredStream(BurstNoisyChannel(0.01, 0.4, 0.2, 0.5)),
            "0110110110110110010111110101110111111110110100111110110101110110");
}

// Runs `channel` through the packed word path in `mode` and renders the
// received bits exactly as DeliveredStream does.
std::string DeliveredStreamWords(const Channel& channel, WordMode mode,
                                 bool all_parties = false) {
  Rng rng(kSeed);
  std::vector<std::uint64_t> words(WordsForParties(kParties), 0);
  std::string stream;
  for (int r = 0; r < kRounds; ++r) {
    channel.DeliverWords(BeepersAt(r), words, kParties, mode, rng);
    if (all_parties) {
      for (int i = 0; i < kParties; ++i) {
        stream += ((words[0] >> i) & 1u) != 0 ? '1' : '0';
      }
    } else {
      stream += (words[0] & 1u) != 0 ? '1' : '0';
    }
  }
  return stream;
}

// The word path in stream-compat mode is a drop-in for the scalar path:
// it must reproduce the SAME pinned goldens, not merely agree with a
// re-run of itself.  A compat regression that shifted the draw order
// would break the scalar goldens above and this test identically.
TEST(ChannelStream, WordStreamCompatReproducesTheGoldens) {
  EXPECT_EQ(DeliveredStreamWords(CorrelatedNoisyChannel(0.1),
                                 WordMode::kStreamCompat),
            "0110110010110110110010110110110110110111100010110110110111110110");
  EXPECT_EQ(DeliveredStreamWords(OneSidedUpChannel(1.0 / 3.0),
                                 WordMode::kStreamCompat),
            "0110110111110110110111111111111111110110110110110110110111110111");
  EXPECT_EQ(DeliveredStreamWords(IndependentNoisyChannel(0.2),
                                 WordMode::kStreamCompat),
            "0110110110011110101110100110100110100010111010110110100111110100");
  EXPECT_EQ(DeliveredStreamWords(BurstNoisyChannel(0.01, 0.4, 0.2, 0.5),
                                 WordMode::kStreamCompat),
            "0110110110110110010111110101110111111110110100111110110101110110");
  // The per-listener independent streams agree too, not just party 0.
  const IndependentNoisyChannel independent(0.2);
  EXPECT_EQ(DeliveredStreamWords(independent, WordMode::kStreamCompat,
                                 /*all_parties=*/true),
            DeliveredStream(independent, /*all_parties=*/true));
}

// Fast-mode goldens for the one channel whose fast path draws a genuinely
// different stream (batched bit-sliced words at large eps, geometric skip
// sampling at small eps).  These pin the realized fast noise at kSeed;
// shared-draw channels have no separate fast goldens because their fast
// path is draw-for-draw the scalar path.
TEST(ChannelStream, FastModeGoldensArePinned) {
  // eps = 0.2: eps * 64 >= 1, so the bit-sliced word sampler runs.
  EXPECT_EQ(
      DeliveredStreamWords(IndependentNoisyChannel(0.2), WordMode::kFast,
                           /*all_parties=*/true),
      "0000001100111100000001111111011000001111111010000011111111110000"
      "0111111101100000101011110100000111111010100001111101101010000101"
      "1110110000001101101111011100011101110000000111111111010001111111"
      "1111000001111110110000011110011100000010111111110001011111110110"
      "0000001101011100100001111111100000111111110100010101111111101100");
  // eps = 0.004: eps * 64 < 1, so the geometric skip walk runs.
  EXPECT_EQ(
      DeliveredStreamWords(IndependentNoisyChannel(0.004), WordMode::kFast,
                           /*all_parties=*/true),
      "0000011111111110000011111111110000011111111110000011111111110000"
      "0111111111100000111111111100000111111111100000111111111100000111"
      "1111111000001111111111000001111111111000001111111111000001111111"
      "1110000011111111110000011011111110000011111111110000011111111110"
      "0000111111111100000111111111100000111111111100000111111111100000");
}

}  // namespace
}  // namespace noisybeeps
