// JobSpec identity: the canonical config string and the two hashes
// derived from it.  The load-bearing change under test is PR 8's
// config-hash extension: the FAIL plan (and its seed) is part of the
// checkpoint resume guard, so a chaos run can never silently resume from
// an incompatible clean-run checkpoint -- the mismatch regression at the
// bottom drives RunJob end-to-end to prove the refusal is real, not just
// a different number.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "resilience/checkpoint.h"
#include "resilience/resilient_trials.h"
#include "service/job_spec.h"
#include "service/workload.h"

namespace noisybeeps::service {
namespace {

namespace stdfs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (stdfs::path(::testing::TempDir()) / name).string();
}

// The small fast workload the soak scripts also use.
JobSpec FastSpec() {
  JobSpec spec;
  spec.task = "input_set";
  spec.channel = "correlated";
  spec.sim = "repetition";
  spec.n = 8;
  spec.eps = 0.05;
  spec.trials = 9;
  spec.seed = 21;
  return spec;
}

TEST(JobSpec, CanonicalStringSpellsEveryConfigFieldInOrder) {
  JobSpec spec = FastSpec();
  spec.fault_plan = "crash:3@2";
  spec.fault_seed = 7;
  spec.fail_plan = "fail:write@0";
  spec.fail_seed = 11;
  const std::string canon = spec.CanonicalConfigString();
  // nbsim's historical prefix, extended with the fail-plan fields.
  const char* const keys[] = {
      "task=",         "channel=",    "sim=",        "n=",
      "eps=",          "faults=",     "fault_seed=", "max_attempts=",
      "round_budget=", "timeout_ms=", "backoff_ms=", "fail=",
      "fail_seed=",
  };
  std::size_t pos = 0;
  for (const char* key : keys) {
    const std::size_t at = canon.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key << " missing in: " << canon;
    pos = at + 1;
  }
  // trials/seed/deadline are deliberately NOT config: trials and seed are
  // resume-checked from the checkpoint itself, deadline is pure QoS.
  EXPECT_EQ(canon.find("trials="), std::string::npos) << canon;
  EXPECT_EQ(canon.find("seed=21"), std::string::npos) << canon;
  EXPECT_EQ(canon.find("deadline"), std::string::npos) << canon;
}

TEST(JobSpec, CanonicalStringNormalizesPlanSpelling) {
  JobSpec a = FastSpec();
  JobSpec b = FastSpec();
  // Same plan, different surface spelling: an empty last-hit and '*'
  // both mean forever, and ToString() pins one spelling.
  a.fail_plan = "fail:write@0-*";
  b.fail_plan = "fail:write@0-";
  EXPECT_EQ(a.CanonicalConfigString(), b.CanonicalConfigString());
  EXPECT_EQ(a.ConfigHash(), b.ConfigHash());
}

TEST(JobSpec, ConfigHashCoversTheFailPlan) {
  const JobSpec clean = FastSpec();
  JobSpec chaotic = FastSpec();
  chaotic.fail_plan = "fail:write@0";
  EXPECT_NE(clean.ConfigHash(), chaotic.ConfigHash());
  EXPECT_NE(clean.CacheKey(), chaotic.CacheKey());

  JobSpec reseeded = chaotic;
  reseeded.fail_seed = 99;
  EXPECT_NE(chaotic.ConfigHash(), reseeded.ConfigHash());
}

TEST(JobSpec, ConfigHashExcludesTrialsSeedAndDeadline) {
  const JobSpec base = FastSpec();
  JobSpec more_trials = base;
  more_trials.trials = 100;
  JobSpec reseeded = base;
  reseeded.seed = 999;
  JobSpec hurried = base;
  hurried.deadline_millis = 50;
  EXPECT_EQ(base.ConfigHash(), more_trials.ConfigHash());
  EXPECT_EQ(base.ConfigHash(), reseeded.ConfigHash());
  EXPECT_EQ(base.ConfigHash(), hurried.ConfigHash());
}

TEST(JobSpec, CacheKeyCoversTrialsAndSeedButNeverDeadline) {
  const JobSpec base = FastSpec();
  JobSpec more_trials = base;
  more_trials.trials = 100;
  JobSpec reseeded = base;
  reseeded.seed = 999;
  JobSpec hurried = base;
  hurried.deadline_millis = 50;
  EXPECT_NE(base.CacheKey(), more_trials.CacheKey());
  EXPECT_NE(base.CacheKey(), reseeded.CacheKey());
  // Identical work under different deadlines shares a cache entry.
  EXPECT_EQ(base.CacheKey(), hurried.CacheKey());
}

TEST(JobSpecValidate, RejectsUnknownNamesAndBadRanges) {
  JobSpec spec = FastSpec();
  spec.task = "telepathy";
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
  spec = FastSpec();
  spec.channel = "carrier_pigeon";
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
  spec = FastSpec();
  spec.sim = "vibes";
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
  spec = FastSpec();
  spec.n = 1;
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
  spec = FastSpec();
  spec.eps = 1.0;
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
  spec = FastSpec();
  spec.max_attempts = 0;
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
  spec = FastSpec();
  spec.deadline_millis = -1;
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
}

TEST(JobSpecValidate, RejectsMalformedPlansAndOutOfRangeParties) {
  JobSpec spec = FastSpec();
  spec.fail_plan = "fail:write@";
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
  spec = FastSpec();
  spec.fault_plan = "not a plan";
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
  spec = FastSpec();
  spec.fault_plan = "crash:" + std::to_string(spec.n) + "@1";  // party == n
  EXPECT_THROW(ValidateJobSpec(spec), std::invalid_argument);
  spec = FastSpec();
  EXPECT_NO_THROW(ValidateJobSpec(spec));
}

// --- the PR 8 mismatch regression ----------------------------------------
//
// A checkpoint written by a clean run must NOT be resumable by the same
// spec with a fail plan attached (or vice versa): the fail plan changes
// what the run DOES, so resuming across it would splice two different
// computations into one result file.

void RemoveCheckpointDebris(const std::string& path) {
  stdfs::remove(path);
  stdfs::remove(path + ".tmp");
  stdfs::remove(path + ".corrupt");
}

TEST(JobSpecResume, FailPlanMismatchRefusesTheCheckpoint) {
  const std::string path = TempPath("spec_mismatch.nbckpt");
  RemoveCheckpointDebris(path);

  JobExecution exec;
  exec.checkpoint_path = path;
  exec.checkpoint_every = 2;
  exec.halt_after_checkpoints = 1;

  // A clean run leaves a mid-sweep checkpoint behind.
  const JobSpec clean = FastSpec();
  EXPECT_THROW((void)RunJob(clean, exec), resilience::RunInterrupted);
  ASSERT_TRUE(stdfs::exists(path));

  // The same job "under chaos" must refuse to resume it: different fail
  // plan => different config hash => CheckpointError, not a quiet splice.
  JobSpec chaotic = clean;
  chaotic.fail_plan = "latency:sync@0-*:1";
  exec.halt_after_checkpoints = 0;
  EXPECT_THROW((void)RunJob(chaotic, exec), resilience::CheckpointError);

  // Control: the IDENTICAL spec resumes fine and lands on the baseline.
  JobExecution fresh;
  const JobResult baseline = RunJob(clean, fresh);
  const JobResult resumed = RunJob(clean, exec);
  EXPECT_EQ(resumed.results_fingerprint, baseline.results_fingerprint);
  EXPECT_GT(resumed.report.resumed_trials, 0);
  RemoveCheckpointDebris(path);
}

TEST(JobSpecResume, FailSeedMismatchAloneRefusesTheCheckpoint) {
  const std::string path = TempPath("spec_seed_mismatch.nbckpt");
  RemoveCheckpointDebris(path);

  JobSpec chaotic = FastSpec();
  // An injection window far past this workload's op counts: the plan
  // never fires, so the run completes -- but it is still part of the
  // job's identity.
  chaotic.fail_plan = "corrupt:read@1000:1";
  chaotic.fail_seed = 1;

  JobExecution exec;
  exec.checkpoint_path = path;
  exec.checkpoint_every = 2;
  exec.halt_after_checkpoints = 1;
  EXPECT_THROW((void)RunJob(chaotic, exec), resilience::RunInterrupted);

  JobSpec reseeded = chaotic;
  reseeded.fail_seed = 2;  // same plan text, different corruption stream
  exec.halt_after_checkpoints = 0;
  EXPECT_THROW((void)RunJob(reseeded, exec), resilience::CheckpointError);
  RemoveCheckpointDebris(path);
}

}  // namespace
}  // namespace noisybeeps::service
