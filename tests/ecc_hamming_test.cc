#include "ecc/hamming.h"

#include <gtest/gtest.h>

#include "ecc/code.h"

namespace noisybeeps {
namespace {

TEST(HammingCode, Dimensions) {
  const HammingCode basic(false);
  EXPECT_EQ(basic.num_messages(), 16u);
  EXPECT_EQ(basic.codeword_length(), 7u);
  const HammingCode extended(true);
  EXPECT_EQ(extended.codeword_length(), 8u);
}

TEST(HammingCode, MinimumDistances) {
  EXPECT_EQ(MinimumDistance(HammingCode(false)), 3u);
  EXPECT_EQ(MinimumDistance(HammingCode(true)), 4u);
}

TEST(HammingCode, CleanRoundTrip) {
  for (bool extended : {false, true}) {
    const HammingCode code(extended);
    for (std::uint64_t m = 0; m < 16; ++m) {
      EXPECT_EQ(code.Decode(code.Encode(m)), m) << extended << " " << m;
    }
  }
}

TEST(HammingCode, CorrectsEverySingleBitError) {
  for (bool extended : {false, true}) {
    const HammingCode code(extended);
    for (std::uint64_t m = 0; m < 16; ++m) {
      const BitString word = code.Encode(m);
      for (std::size_t p = 0; p < word.size(); ++p) {
        BitString corrupted = word;
        corrupted.Set(p, !corrupted[p]);
        EXPECT_EQ(code.Decode(corrupted), m)
            << "extended=" << extended << " m=" << m << " p=" << p;
      }
    }
  }
}

TEST(HammingCode, ExtendedNeverMiscorrectsDoubleErrorsIntoWrongNeighbours) {
  // [8,4,4]: double errors land at distance 2 from the true codeword and
  // >= 2 from every other, so exhaustive ML can return the true message
  // or a tie -- but must never return something at distance > 2.
  const HammingCode code(true);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const BitString word = code.Encode(m);
    for (std::size_t p = 0; p < 8; ++p) {
      for (std::size_t q = p + 1; q < 8; ++q) {
        BitString corrupted = word;
        corrupted.Set(p, !corrupted[p]);
        corrupted.Set(q, !corrupted[q]);
        const std::uint64_t decoded = code.Decode(corrupted);
        EXPECT_LE(code.Encode(decoded).HammingDistance(corrupted), 2u)
            << "m=" << m << " p=" << p << " q=" << q;
      }
    }
  }
}

TEST(HammingCode, ParityBitOnlyErrorLeavesDataIntact) {
  const HammingCode code(true);
  for (std::uint64_t m = 0; m < 16; ++m) {
    BitString word = code.Encode(m);
    word.Set(7, !word[7]);  // flip the overall-parity bit
    EXPECT_EQ(code.Decode(word), m);
  }
}

TEST(HammingCode, RejectsBadInput) {
  const HammingCode code(false);
  EXPECT_THROW((void)code.Encode(16), std::invalid_argument);
  EXPECT_THROW((void)code.Decode(BitString(8)), std::invalid_argument);
}

TEST(HammingCode, AllCodewordsHaveEvenWeightInExtended) {
  const HammingCode code(true);
  for (std::uint64_t m = 0; m < 16; ++m) {
    EXPECT_EQ(code.Encode(m).PopCount() % 2, 0u) << m;
  }
}

}  // namespace
}  // namespace noisybeeps
