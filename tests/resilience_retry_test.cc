// The watchdog + retry half of the resilience layer: deterministic
// backoff schedules, seed perturbation that leaves attempt 0 untouched,
// failure classification under round/wall budgets, and the full
// ResilientTrials retry loop (retry-then-succeed, abandonment, exception
// propagation, report accounting).
#include "resilience/retry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>

#include "resilience/checkpoint.h"
#include "resilience/clock.h"
#include "resilience/outcome.h"
#include "resilience/resilient_trials.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace noisybeeps::resilience {
namespace {

TEST(BackoffMillis, FirstAttemptIsFree) {
  RetryPolicy policy;
  policy.base_backoff_millis = 100;
  EXPECT_EQ(BackoffMillis(policy, 0), 0);
}

TEST(BackoffMillis, ExponentialWithCap) {
  RetryPolicy policy;
  policy.base_backoff_millis = 100;
  policy.max_backoff_millis = 1000;
  EXPECT_EQ(BackoffMillis(policy, 1), 100);
  EXPECT_EQ(BackoffMillis(policy, 2), 200);
  EXPECT_EQ(BackoffMillis(policy, 3), 400);
  EXPECT_EQ(BackoffMillis(policy, 4), 800);
  EXPECT_EQ(BackoffMillis(policy, 5), 1000);  // capped
  EXPECT_EQ(BackoffMillis(policy, 20), 1000);
}

TEST(BackoffMillis, HugeCapDoesNotOverflow) {
  // With an effectively-unbounded cap the doubling must saturate at the
  // cap, not signed-overflow std::int64_t (UB, caught under UBSan).
  RetryPolicy policy;
  policy.base_backoff_millis = 3;
  policy.max_backoff_millis = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(BackoffMillis(policy, 1), 3);
  EXPECT_EQ(BackoffMillis(policy, 2), 6);
  EXPECT_EQ(BackoffMillis(policy, 100), policy.max_backoff_millis);
  EXPECT_EQ(BackoffMillis(policy, 10000), policy.max_backoff_millis);
}

TEST(BackoffMillis, ZeroBaseMeansNoWaiting) {
  RetryPolicy policy;  // base 0 is the in-process default
  for (int a = 0; a < 5; ++a) EXPECT_EQ(BackoffMillis(policy, a), 0);
}

TEST(BackoffMillis, RejectsNegativeArguments) {
  RetryPolicy policy;
  EXPECT_THROW((void)BackoffMillis(policy, -1), std::invalid_argument);
  policy.base_backoff_millis = -5;
  EXPECT_THROW((void)BackoffMillis(policy, 1), std::invalid_argument);
}

TEST(PerturbedAttemptRng, AttemptZeroIsTheBaseStream) {
  // The load-bearing compatibility guarantee: max_attempts=1 resilient
  // runs are bit-identical to plain ParallelTrials.
  Rng base(17);
  (void)base.NextU64();
  Rng copy = base;
  Rng attempt0 = PerturbedAttemptRng(base, 0);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(attempt0.NextU64(), copy.NextU64());
}

TEST(PerturbedAttemptRng, LaterAttemptsAreDecorrelatedAndReproducible) {
  Rng base(17);
  std::set<std::uint64_t> firsts;
  for (int attempt = 0; attempt < 8; ++attempt) {
    Rng a = PerturbedAttemptRng(base, attempt);
    Rng b = PerturbedAttemptRng(base, attempt);
    const std::uint64_t first = a.NextU64();
    EXPECT_EQ(first, b.NextU64()) << attempt;  // reproducible
    EXPECT_TRUE(firsts.insert(first).second) << attempt;  // decorrelated
  }
  EXPECT_THROW((void)PerturbedAttemptRng(base, -1), std::invalid_argument);
}

TEST(ClassifyAttempt, AcceptsOkAndDegradedUnderNoBudget) {
  const TrialBudget unlimited;
  EXPECT_EQ(ClassifyAttempt({TrialVerdict::kOk, 1000}, 99999, unlimited),
            TrialFailure::kNone);
  // Degradation is a reportable outcome, not a transient failure.
  EXPECT_EQ(ClassifyAttempt({TrialVerdict::kDegraded, 0}, 0, unlimited),
            TrialFailure::kNone);
}

TEST(ClassifyAttempt, FailedVerdictIsRetryable) {
  EXPECT_EQ(ClassifyAttempt({TrialVerdict::kFailed, 0}, 0, {}),
            TrialFailure::kDegradedVerdict);
}

TEST(ClassifyAttempt, RoundBudgetIsDeterministicTimeout) {
  TrialBudget budget;
  budget.max_rounds = 500;
  EXPECT_EQ(ClassifyAttempt({TrialVerdict::kOk, 500}, 0, budget),
            TrialFailure::kNone);  // at the budget is fine
  EXPECT_EQ(ClassifyAttempt({TrialVerdict::kOk, 501}, 0, budget),
            TrialFailure::kTimeout);
  // The round budget outranks the verdict: a "passing" runaway is a hang.
  EXPECT_EQ(ClassifyAttempt({TrialVerdict::kFailed, 501}, 0, budget),
            TrialFailure::kTimeout);
}

TEST(ClassifyAttempt, WallBudgetUsesElapsedMillis) {
  TrialBudget budget;
  budget.max_wall_millis = 20;
  EXPECT_EQ(ClassifyAttempt({TrialVerdict::kOk, 0}, 20, budget),
            TrialFailure::kNone);
  EXPECT_EQ(ClassifyAttempt({TrialVerdict::kOk, 0}, 21, budget),
            TrialFailure::kTimeout);
}

// ---------------------------------------------------------------------------
// ResilientTrials retry loop, driven by a value-classifying adapter: the
// body returns one draw from its attempt rng, and the adapter fails any
// value listed in `failed_values`.  Expected retry behaviour is computed
// in the test by replaying PerturbedAttemptRng -- no hidden state.
struct ValueAdapter {
  std::set<std::uint64_t>* failed_values;

  [[nodiscard]] std::string Encode(const std::uint64_t& v) const {
    std::string out;
    AppendU64(out, v);
    return out;
  }
  [[nodiscard]] std::uint64_t Decode(std::string_view bytes) const {
    ByteReader reader(bytes);
    return reader.U64();
  }
  [[nodiscard]] TrialAssessment Assess(const std::uint64_t& v) const {
    TrialAssessment assessment;
    if (failed_values->count(v) > 0) assessment.verdict = TrialVerdict::kFailed;
    return assessment;
  }
};

std::uint64_t DrawBody(int, Rng& rng) { return rng.NextU64(); }

// First draw of attempt `a` for trial `t` under parent seed `seed`.
std::uint64_t AttemptValue(std::uint64_t seed, int num_trials, int t, int a) {
  Rng parent(seed);
  std::vector<Rng> rngs = SplitTrialRngs(num_trials, parent);
  Rng attempt = PerturbedAttemptRng(rngs[static_cast<std::size_t>(t)], a);
  return attempt.NextU64();
}

TEST(ResilientTrials, RetriesFailedVerdictsWithPerturbedSeeds) {
  constexpr std::uint64_t kSeed = 123;
  constexpr int kTrials = 4;
  // Trials 1 and 3 fail their first attempt; their retry must land on the
  // perturbed attempt-1 stream.
  std::set<std::uint64_t> failed = {AttemptValue(kSeed, kTrials, 1, 0),
                                    AttemptValue(kSeed, kTrials, 3, 0)};
  ResilienceOptions opts;
  opts.retry.max_attempts = 3;
  Rng rng(kSeed);
  const RunOutput<std::uint64_t> out =
      ResilientTrials(kTrials, rng, DrawBody, ValueAdapter{&failed}, opts);
  ASSERT_EQ(out.results.size(), 4u);
  EXPECT_EQ(out.results[0], AttemptValue(kSeed, kTrials, 0, 0));
  EXPECT_EQ(out.results[1], AttemptValue(kSeed, kTrials, 1, 1));
  EXPECT_EQ(out.results[2], AttemptValue(kSeed, kTrials, 2, 0));
  EXPECT_EQ(out.results[3], AttemptValue(kSeed, kTrials, 3, 1));
  EXPECT_EQ(out.report.total_trials, 4);
  EXPECT_EQ(out.report.completed, 4);
  EXPECT_EQ(out.report.retried, 2);
  EXPECT_EQ(out.report.abandoned, 0);
  EXPECT_EQ(out.report.attempts, 6);
  EXPECT_EQ(out.report.degraded_verdicts, 2);
  EXPECT_EQ(out.report.timeouts, 0);
  EXPECT_EQ(out.report.exceptions, 0);
}

TEST(ResilientTrials, AbandonsAfterRetryBudgetAndKeepsFinalResult) {
  constexpr std::uint64_t kSeed = 31;
  constexpr int kTrials = 2;
  constexpr int kMaxAttempts = 3;
  std::set<std::uint64_t> failed;
  for (int a = 0; a < kMaxAttempts; ++a) {
    failed.insert(AttemptValue(kSeed, kTrials, 0, a));
  }
  ResilienceOptions opts;
  opts.retry.max_attempts = kMaxAttempts;
  Rng rng(kSeed);
  const RunOutput<std::uint64_t> out =
      ResilientTrials(kTrials, rng, DrawBody, ValueAdapter{&failed}, opts);
  // The final attempt's result is kept (abandoned, not dropped): the
  // result vector always has one entry per trial.
  EXPECT_EQ(out.results[0], AttemptValue(kSeed, kTrials, 0, kMaxAttempts - 1));
  EXPECT_EQ(out.report.abandoned, 1);
  EXPECT_EQ(out.report.completed, 1);
  EXPECT_EQ(out.report.attempts, kMaxAttempts + 1);
  EXPECT_EQ(out.report.degraded_verdicts, kMaxAttempts);
}

TEST(ResilientTrials, ExceptionIsClassifiedAndRetried) {
  constexpr std::uint64_t kSeed = 77;
  constexpr int kTrials = 3;
  std::set<std::uint64_t> throw_on = {AttemptValue(kSeed, kTrials, 2, 0)};
  const auto body = [&](int t, Rng& rng) -> std::uint64_t {
    const std::uint64_t v = DrawBody(t, rng);
    if (throw_on.count(v) > 0) throw std::runtime_error("flaky trial body");
    return v;
  };
  std::set<std::uint64_t> no_failures;
  ResilienceOptions opts;
  opts.retry.max_attempts = 2;
  Rng rng(kSeed);
  const RunOutput<std::uint64_t> out =
      ResilientTrials(kTrials, rng, body, ValueAdapter{&no_failures}, opts);
  EXPECT_EQ(out.results[2], AttemptValue(kSeed, kTrials, 2, 1));
  EXPECT_EQ(out.report.exceptions, 1);
  EXPECT_EQ(out.report.retried, 1);
  EXPECT_EQ(out.report.completed, 3);
  EXPECT_EQ(out.report.abandoned, 0);
}

TEST(ResilientTrials, FinalAttemptExceptionPropagates) {
  // A persistent crash must stop the run loudly -- there is no result to
  // keep, and fabricating one would poison the sweep.  This must hold at
  // EVERY worker count: run_one executes on ParallelForEach workers, so
  // the rethrow has to be ferried to the joining thread, not escape a
  // thread start function (std::terminate, no diagnostic, no catch).
  const auto body = [](int, Rng&) -> std::uint64_t {
    throw std::runtime_error("always broken");
  };
  std::set<std::uint64_t> no_failures;
  for (int workers : {1, 2, 4}) {
    ResilienceOptions opts;
    opts.retry.max_attempts = 2;
    opts.num_workers = workers;
    Rng rng(9);
    try {
      (void)ResilientTrials(8, rng, body, ValueAdapter{&no_failures}, opts);
      FAIL() << "final-attempt exception swallowed at workers=" << workers;
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "always broken") << workers;
    }
  }
}

TEST(ResilientTrials, WallTimeoutRetriesUnderFakeClock) {
  // The body burns 50 virtual ms on attempt 0 of every trial and runs
  // instantly afterward; a 20ms wall budget classifies attempt 0 as a
  // timeout and the retry succeeds.
  FakeClock clock;
  constexpr std::uint64_t kSeed = 5;
  constexpr int kTrials = 2;
  std::set<std::uint64_t> slow_values = {AttemptValue(kSeed, kTrials, 0, 0),
                                         AttemptValue(kSeed, kTrials, 1, 0)};
  const auto body = [&](int t, Rng& rng) {
    const std::uint64_t v = DrawBody(t, rng);
    if (slow_values.count(v) > 0) clock.Advance(50);
    return v;
  };
  std::set<std::uint64_t> no_failures;
  ResilienceOptions opts;
  opts.retry.max_attempts = 2;
  opts.budget.max_wall_millis = 20;
  opts.clock = &clock;
  opts.num_workers = 1;  // virtual elapsed time is per-run, not per-thread
  Rng rng(kSeed);
  const RunOutput<std::uint64_t> out =
      ResilientTrials(kTrials, rng, body, ValueAdapter{&no_failures}, opts);
  EXPECT_EQ(out.report.timeouts, 2);
  EXPECT_EQ(out.report.retried, 2);
  EXPECT_EQ(out.report.completed, 2);
  EXPECT_EQ(out.results[0], AttemptValue(kSeed, kTrials, 0, 1));
  EXPECT_EQ(out.results[1], AttemptValue(kSeed, kTrials, 1, 1));
}

TEST(ResilientTrials, RoundBudgetIsDeterministicWatchdog) {
  // rounds_used = first draw % 100; budget 50.  Which trials blow the
  // budget is a pure function of the seed -- the watchdog is reproducible.
  struct RoundsAdapter {
    [[nodiscard]] std::string Encode(const std::uint64_t& v) const {
      std::string out;
      AppendU64(out, v);
      return out;
    }
    [[nodiscard]] std::uint64_t Decode(std::string_view bytes) const {
      ByteReader reader(bytes);
      return reader.U64();
    }
    [[nodiscard]] TrialAssessment Assess(const std::uint64_t& v) const {
      return {TrialVerdict::kOk, static_cast<std::int64_t>(v % 100)};
    }
  };
  ResilienceOptions opts;
  opts.retry.max_attempts = 4;
  opts.budget.max_rounds = 50;
  RunReport first;
  for (int run = 0; run < 2; ++run) {
    Rng rng(2024);
    const RunOutput<std::uint64_t> out =
        ResilientTrials(40, rng, DrawBody, RoundsAdapter{}, opts);
    EXPECT_GT(out.report.timeouts, 0) << "seed produced no over-budget draws";
    EXPECT_EQ(out.report.completed + out.report.abandoned, 40);
    if (run == 0) {
      first = out.report;
    } else {
      EXPECT_EQ(out.report, first);  // bit-stable across repeat runs
    }
  }
}

TEST(ResilientTrials, BackoffIsRecordedViaFakeClockSleeps) {
  FakeClock clock;
  constexpr std::uint64_t kSeed = 88;
  std::set<std::uint64_t> failed = {AttemptValue(kSeed, 1, 0, 0),
                                    AttemptValue(kSeed, 1, 0, 1)};
  ResilienceOptions opts;
  opts.retry.max_attempts = 3;
  opts.retry.base_backoff_millis = 10;
  opts.clock = &clock;
  opts.num_workers = 1;
  Rng rng(kSeed);
  const RunOutput<std::uint64_t> out =
      ResilientTrials(1, rng, DrawBody, ValueAdapter{&failed}, opts);
  EXPECT_EQ(out.report.attempts, 3);
  // Slept 10ms before attempt 1 and 20ms before attempt 2.
  EXPECT_EQ(clock.NowMillis(), 30);
}

TEST(ResilientTrials, MatchesParallelTrialsWhenRetriesDisabled) {
  // With max_attempts=1 and no checkpoint, the resilient engine is a
  // drop-in for ParallelTrials: identical results, identical parent
  // advance.
  const auto body = [](int t, Rng& r) { return r.NextU64() ^ t; };
  Rng plain_rng(321);
  const std::vector<std::uint64_t> plain =
      ParallelTrials(32, plain_rng, body, 4);
  std::set<std::uint64_t> no_failures;
  Rng resilient_rng(321);
  const RunOutput<std::uint64_t> out = ResilientTrials(
      32, resilient_rng, body, ValueAdapter{&no_failures}, {});
  EXPECT_EQ(out.results, plain);
  EXPECT_EQ(plain_rng.NextU64(), resilient_rng.NextU64());
  EXPECT_EQ(out.report.attempts, 32);
  EXPECT_EQ(out.report.completed, 32);
}

TEST(ResilientTrials, RejectsBadOptions) {
  const auto body = [](int, Rng&) -> std::uint64_t { return 0; };
  std::set<std::uint64_t> no_failures;
  const ValueAdapter adapter{&no_failures};
  Rng rng(1);
  ResilienceOptions opts;
  opts.retry.max_attempts = 0;
  EXPECT_THROW((void)ResilientTrials(1, rng, body, adapter, opts),
               std::invalid_argument);
  opts = {};
  opts.checkpoint_every = -1;
  EXPECT_THROW((void)ResilientTrials(1, rng, body, adapter, opts),
               std::invalid_argument);
  opts = {};
  opts.halt_after_checkpoints = -1;
  EXPECT_THROW((void)ResilientTrials(1, rng, body, adapter, opts),
               std::invalid_argument);
  EXPECT_THROW((void)ResilientTrials(-1, rng, body, adapter, {}),
               std::invalid_argument);
}

TEST(RunReport, FingerprintIgnoresExecutionMetadata) {
  RunReport a;
  a.total_trials = 10;
  a.completed = 9;
  a.retried = 2;
  a.abandoned = 1;
  a.attempts = 13;
  a.timeouts = 1;
  a.degraded_verdicts = 3;
  RunReport b = a;
  b.resumed_trials = 7;        // differs between clean and resumed runs
  b.checkpoints_written = 4;   // -- must not perturb the fingerprint
  b.checkpoints_quarantined = 1;      // I/O weather, same maths: a chaos
  b.checkpoint_write_failures = 3;    // run stays comparable to a clean one
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  RunReport c = a;
  c.completed = 8;
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(RunReport, FormatIsOperatorReadable) {
  RunReport report;
  report.total_trials = 10;
  report.completed = 9;
  report.retried = 2;
  report.abandoned = 1;
  report.attempts = 13;
  report.timeouts = 1;
  report.degraded_verdicts = 3;
  report.resumed_trials = 4;
  report.checkpoints_written = 2;
  report.checkpoints_quarantined = 1;
  report.checkpoint_write_failures = 5;
  EXPECT_EQ(FormatRunReport(report),
            "completed=9/10 retried=2 abandoned=1 attempts=13 "
            "failures[timeout=1 exception=0 degraded_verdict=3] "
            "resumed=4 checkpoints=2 io[quarantined=1 write_failures=5]");
}

TEST(ReportFromLedgers, CountsTaxonomy) {
  std::vector<TrialLedger> ledgers(3);
  ledgers[0].attempts = {{TrialFailure::kNone, 0}};
  ledgers[1].attempts = {{TrialFailure::kTimeout, 0},
                         {TrialFailure::kException, 5},
                         {TrialFailure::kNone, 10}};
  ledgers[2].attempts = {{TrialFailure::kDegradedVerdict, 0},
                         {TrialFailure::kDegradedVerdict, 5}};
  ledgers[2].abandoned = true;
  const RunReport report = ReportFromLedgers(ledgers);
  EXPECT_EQ(report.total_trials, 3);
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.abandoned, 1);
  EXPECT_EQ(report.retried, 2);
  EXPECT_EQ(report.attempts, 6);
  EXPECT_EQ(report.timeouts, 1);
  EXPECT_EQ(report.exceptions, 1);
  EXPECT_EQ(report.degraded_verdicts, 2);
}

TEST(TrialFailureName, NamesEveryKind) {
  EXPECT_STREQ(TrialFailureName(TrialFailure::kNone), "none");
  EXPECT_STREQ(TrialFailureName(TrialFailure::kTimeout), "timeout");
  EXPECT_STREQ(TrialFailureName(TrialFailure::kException), "exception");
  EXPECT_STREQ(TrialFailureName(TrialFailure::kDegradedVerdict),
               "degraded_verdict");
}

}  // namespace
}  // namespace noisybeeps::resilience
