#include "tasks/bit_exchange.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "channel/noiseless.h"
#include "channel/correlated.h"
#include "protocol/executor.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(BitExchange, SampleShapes) {
  Rng rng(1);
  const BitExchangeInstance instance = SampleBitExchange(5, 12, rng);
  EXPECT_EQ(instance.payloads.size(), 5u);
  EXPECT_EQ(instance.bits_per_party, 12);
  for (std::uint64_t p : instance.payloads) {
    EXPECT_LT(p, 1ull << 12);
  }
}

TEST(BitExchange, TranscriptIsConcatenatedPayloads) {
  BitExchangeInstance instance;
  instance.payloads = {0b101, 0b010};  // low bit first on the wire
  instance.bits_per_party = 3;
  const auto protocol = MakeBitExchangeProtocol(instance);
  EXPECT_EQ(protocol->length(), 6);
  // Party 0's payload 0b101 goes out LSB-first: 1,0,1; then party 1: 0,1,0.
  EXPECT_EQ(ReferenceTranscript(*protocol).ToString(), "101010");
}

TEST(BitExchange, NoiselessEveryoneLearnsEverything) {
  Rng rng(2);
  const NoiselessChannel channel;
  for (int n : {1, 4, 9}) {
    for (int k : {1, 7, 64}) {
      const BitExchangeInstance instance = SampleBitExchange(n, k, rng);
      const auto protocol = MakeBitExchangeProtocol(instance);
      const ExecutionResult result = Execute(*protocol, channel, rng);
      EXPECT_TRUE(BitExchangeAllCorrect(instance, result.outputs))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BitExchange, NoiseCorruptsPayloads) {
  Rng rng(3);
  const CorrelatedNoisyChannel channel(0.2);
  int correct = 0;
  for (int t = 0; t < 30; ++t) {
    const BitExchangeInstance instance = SampleBitExchange(8, 16, rng);
    const auto protocol = MakeBitExchangeProtocol(instance);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    correct += BitExchangeAllCorrect(instance, result.outputs);
  }
  // 128 rounds at eps=0.2: survival chance (0.8)^128 ~ 4e-13.
  EXPECT_EQ(correct, 0);
}

TEST(BitExchange, EveryOneHasAUniqueOwner) {
  // In the reference transcript, each 1 is beeped by exactly one party --
  // the property that makes BitExchange the canonical owner-finding load.
  Rng rng(4);
  const BitExchangeInstance instance = SampleBitExchange(6, 10, rng);
  const auto protocol = MakeBitExchangeProtocol(instance);
  BitString prefix;
  for (int m = 0; m < protocol->length(); ++m) {
    int beepers = 0;
    for (int i = 0; i < 6; ++i) {
      beepers += protocol->party(i).ChooseBeep(prefix);
    }
    EXPECT_LE(beepers, 1);
    prefix.PushBack(beepers > 0);
  }
}

TEST(BitExchange, ValidatesParameters) {
  Rng rng(5);
  EXPECT_THROW((void)SampleBitExchange(0, 4, rng), std::invalid_argument);
  EXPECT_THROW((void)SampleBitExchange(2, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)SampleBitExchange(2, 65, rng), std::invalid_argument);
  BitExchangeInstance bad;
  bad.payloads = {1};
  bad.bits_per_party = 0;
  EXPECT_THROW((void)MakeBitExchangeProtocol(bad), std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
