#include "tasks/leader_election.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "channel/noiseless.h"
#include "channel/correlated.h"
#include "protocol/executor.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(LeaderElection, SampleProducesDistinctIds) {
  Rng rng(1);
  const LeaderElectionInstance instance = SampleLeaderElection(50, 10, rng);
  ASSERT_EQ(instance.ids.size(), 50u);
  std::vector<std::uint64_t> sorted = instance.ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  for (std::uint64_t id : instance.ids) EXPECT_LT(id, 1u << 10);
}

TEST(LeaderElection, WinnerIsMaxId) {
  LeaderElectionInstance instance;
  instance.ids = {5, 9, 3};
  instance.id_bits = 4;
  EXPECT_EQ(LeaderElectionWinner(instance), 9u);
}

TEST(LeaderElection, TranscriptSpellsWinnerMsbFirst) {
  LeaderElectionInstance instance;
  instance.ids = {0b0101, 0b0110};
  instance.id_bits = 4;
  const auto protocol = MakeLeaderElectionProtocol(instance);
  EXPECT_EQ(protocol->length(), 4);
  EXPECT_EQ(ReferenceTranscript(*protocol).ToString(), "0110");
}

TEST(LeaderElection, DropOutLogicElectsMaxNotOr) {
  // ids 0b100 and 0b011: the OR of all bits would be 111, but the
  // election must output 100 (party 2 drops out after round 0).
  LeaderElectionInstance instance;
  instance.ids = {0b100, 0b011};
  instance.id_bits = 3;
  const auto protocol = MakeLeaderElectionProtocol(instance);
  EXPECT_EQ(ReferenceTranscript(*protocol).ToString(), "100");
}

TEST(LeaderElection, NoiselessAllSizesCorrect) {
  Rng rng(2);
  const NoiselessChannel channel;
  for (int n : {1, 2, 7, 30}) {
    const LeaderElectionInstance instance =
        SampleLeaderElection(n, 12, rng);
    const auto protocol = MakeLeaderElectionProtocol(instance);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    EXPECT_TRUE(LeaderElectionAllCorrect(instance, result.outputs)) << n;
  }
}

TEST(LeaderElection, ExactlyOneLeaderClaims) {
  Rng rng(3);
  const NoiselessChannel channel;
  const LeaderElectionInstance instance = SampleLeaderElection(15, 8, rng);
  const auto protocol = MakeLeaderElectionProtocol(instance);
  const ExecutionResult result = Execute(*protocol, channel, rng);
  int leaders = 0;
  for (const PartyOutput& out : result.outputs) leaders += out[1] == 1;
  EXPECT_EQ(leaders, 1);
}

TEST(LeaderElection, NoiseBreaksElection) {
  Rng rng(4);
  const CorrelatedNoisyChannel channel(0.3);
  int correct = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    const LeaderElectionInstance instance =
        SampleLeaderElection(20, 16, rng);
    const auto protocol = MakeLeaderElectionProtocol(instance);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    correct += LeaderElectionAllCorrect(instance, result.outputs);
  }
  // 16 rounds at eps=0.3: survival ~ 0.7^16 ~ 0.3% ... allow a few flukes
  // (a flip can also be harmless if it matches the bit anyway -- it
  // cannot, noise always flips -- but the winner can still be spelled
  // correctly only if no round flipped).
  EXPECT_LE(correct, 4);
}

TEST(LeaderElection, AllCorrectRejectsImpostor) {
  LeaderElectionInstance instance;
  instance.ids = {1, 2};
  instance.id_bits = 2;
  std::vector<PartyOutput> outputs{{2, 0}, {2, 1}};
  EXPECT_TRUE(LeaderElectionAllCorrect(instance, outputs));
  // Party 0 (id 1) falsely claims leadership.
  outputs[0][1] = 1;
  EXPECT_FALSE(LeaderElectionAllCorrect(instance, outputs));
  // Nobody claims.
  outputs[0][1] = 0;
  outputs[1][1] = 0;
  EXPECT_FALSE(LeaderElectionAllCorrect(instance, outputs));
}

TEST(LeaderElection, ValidatesParameters) {
  Rng rng(5);
  EXPECT_THROW((void)SampleLeaderElection(0, 4, rng), std::invalid_argument);
  EXPECT_THROW((void)SampleLeaderElection(10, 0, rng), std::invalid_argument);
  // Id space of 2 bits cannot host 5 distinct ids.
  EXPECT_THROW((void)SampleLeaderElection(5, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
