#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(CeilLog2, SmallValues) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
  EXPECT_THROW((void)CeilLog2(0), std::invalid_argument);
}

TEST(FloorLog2, SmallValues) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_THROW((void)FloorLog2(0), std::invalid_argument);
}

TEST(CeilFloorLog2, ConsistencyProperty) {
  for (std::uint64_t x = 1; x < 5000; ++x) {
    const int c = CeilLog2(x);
    const int f = FloorLog2(x);
    EXPECT_LE(f, c);
    EXPECT_LE(c - f, 1);
    EXPECT_GE(std::uint64_t{1} << c, x);
    EXPECT_LE(std::uint64_t{1} << f, x);
  }
}

TEST(Majority, BasicVotes) {
  const std::vector<std::uint8_t> all_ones{1, 1, 1};
  const std::vector<std::uint8_t> mixed{1, 0, 0};
  const std::vector<std::uint8_t> tie{1, 0};
  EXPECT_TRUE(Majority(all_ones));
  EXPECT_FALSE(Majority(mixed));
  EXPECT_TRUE(Majority(tie));  // documented tie-break to 1
  EXPECT_THROW((void)Majority({}), std::invalid_argument);
}

TEST(BinomialUpperTail, BoundaryCases) {
  EXPECT_DOUBLE_EQ(BinomialUpperTail(10, 0.3, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialUpperTail(10, 0.3, 11), 0.0);
  EXPECT_NEAR(BinomialUpperTail(10, 0.0, 1), 0.0, 1e-12);
  EXPECT_NEAR(BinomialUpperTail(10, 1.0, 10), 1.0, 1e-9);
}

TEST(BinomialUpperTail, MatchesDirectComputation) {
  // Pr[Bin(4, 1/2) >= 2] = 11/16.
  EXPECT_NEAR(BinomialUpperTail(4, 0.5, 2), 11.0 / 16.0, 1e-12);
  // Pr[Bin(3, 1/3) >= 3] = 1/27.
  EXPECT_NEAR(BinomialUpperTail(3, 1.0 / 3.0, 3), 1.0 / 27.0, 1e-12);
}

TEST(BinomialUpperTail, MonotoneInThreshold) {
  double prev = 1.1;
  for (int k = 0; k <= 20; ++k) {
    const double tail = BinomialUpperTail(20, 0.3, k);
    EXPECT_LE(tail, prev + 1e-12);
    prev = tail;
  }
}

TEST(Log2Binomial, KnownValues) {
  EXPECT_NEAR(Log2Binomial(4, 2), std::log2(6.0), 1e-9);
  EXPECT_NEAR(Log2Binomial(10, 0), 0.0, 1e-9);
  EXPECT_NEAR(Log2Binomial(10, 10), 0.0, 1e-9);
  EXPECT_NEAR(Log2Binomial(52, 5), std::log2(2598960.0), 1e-6);
}

TEST(LemmaB7, SlackIsNonNegative) {
  // Lemma B.7: (sum a)^2 / (sum b) <= sum a^2/b.
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    const int k = 1 + static_cast<int>(rng.UniformInt(20));
    std::vector<double> a(k);
    std::vector<double> b(k);
    for (int i = 0; i < k; ++i) {
      a[i] = rng.UniformDouble() * 10 + 1e-6;
      b[i] = rng.UniformDouble() * 10 + 1e-6;
    }
    EXPECT_GE(LemmaB7Slack(a, b), -1e-9);
  }
}

TEST(LemmaB7, TightWhenProportional) {
  // Equality in Cauchy-Schwarz when a_i proportional to b_i.
  const std::vector<double> a{2.0, 4.0, 6.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_NEAR(LemmaB7Slack(a, b), 0.0, 1e-9);
}

TEST(LemmaB7, RejectsBadArguments) {
  const std::vector<double> a{1.0};
  const std::vector<double> bad_b{0.0};
  EXPECT_THROW((void)LemmaB7Slack(a, bad_b), std::invalid_argument);
  EXPECT_THROW((void)LemmaB7Slack({}, {}), std::invalid_argument);
}

TEST(CountUniqueElements, Basic) {
  const std::vector<std::uint64_t> values{1, 2, 2, 3, 4, 4, 4, 5};
  EXPECT_EQ(CountUniqueElements(values), 3u);  // 1, 3, 5
  EXPECT_EQ(CountUniqueElements({}), 0u);
}

TEST(LemmaB8, BoundHoldsEmpirically) {
  // Pr[|I| <= k/3] <= (3/2)(1 - e^{-k/|S|}) for k iid uniform draws from S.
  Rng rng(22);
  for (const auto& [k, set_size] : std::vector<std::pair<int, int>>{
           {8, 16}, {16, 32}, {32, 64}, {64, 128}}) {
    int bad = 0;
    constexpr int kTrials = 2000;
    std::vector<std::uint64_t> values(k);
    for (int t = 0; t < kTrials; ++t) {
      for (int i = 0; i < k; ++i) values[i] = rng.UniformInt(set_size);
      if (3 * CountUniqueElements(values) <= static_cast<std::size_t>(k)) {
        ++bad;
      }
    }
    const double empirical = static_cast<double>(bad) / kTrials;
    const double bound = LemmaB8Bound(k, set_size);
    EXPECT_LE(empirical, bound + 0.02) << "k=" << k << " |S|=" << set_size;
  }
}

TEST(LemmaB8, BoundFormula) {
  EXPECT_NEAR(LemmaB8Bound(10, 10), 1.5 * (1 - std::exp(-1.0)), 1e-12);
  EXPECT_THROW((void)LemmaB8Bound(1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
