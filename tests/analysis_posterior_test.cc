#include "analysis/posterior.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/feasible_sets.h"
#include "channel/one_sided.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

constexpr double kEps = 1.0 / 3.0;

TEST(ExactPosterior, EmptyTranscriptGivesPrior) {
  const auto family = MakeInputSetFamily(2);  // universe 4, 16 vectors
  const PosteriorResult result = ExactPosterior(*family, BitString(), kEps);
  EXPECT_NEAR(result.entropy_bits, 2 * std::log2(4.0), 1e-9);
  EXPECT_NEAR(result.log2_prob_pi, 0.0, 1e-9);
  for (double h : result.marginal_entropy_bits) {
    EXPECT_NEAR(h, 2.0, 1e-9);
  }
  for (std::size_t s : result.support_size) EXPECT_EQ(s, 4u);
}

TEST(ExactPosterior, AllOnesTranscriptKeepsEntropyHigh) {
  // Ones carry little information under the trivial protocol (every input
  // stays feasible; only likelihood reweighting applies).
  const auto family = MakeInputSetFamily(2);
  const BitString pi = BitString::FromString("1111");
  const PosteriorResult result = ExactPosterior(*family, pi, kEps);
  EXPECT_GT(result.entropy_bits, 3.0);
  for (std::size_t s : result.support_size) EXPECT_EQ(s, 4u);
}

TEST(ExactPosterior, ZerosCutSupportToFeasibleSets) {
  const auto family = MakeInputSetFamily(2);
  const BitString pi = BitString::FromString("0011");
  const PosteriorResult result = ExactPosterior(*family, pi, kEps);
  const auto sets = AllFeasibleSets(*family, pi);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(result.support_size[i], sets[i].size());
  }
}

TEST(ExactPosterior, TranscriptProbabilitiesSumToOne) {
  // Sum of Pr(pi) over all 2^T transcripts must be 1.
  const auto family = MakeInputSetFamily(2);  // T = 4
  double total = 0.0;
  int infeasible = 0;
  for (unsigned mask = 0; mask < 16; ++mask) {
    BitString pi;
    for (int m = 0; m < 4; ++m) pi.PushBack((mask >> m) & 1);
    const PosteriorResult result = ExactPosterior(*family, pi, kEps);
    if (result.feasible) {
      total += std::exp2(result.log2_prob_pi);
    } else {
      ++infeasible;
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // The all-zero transcript (among others) is impossible: every input
  // vector beeps somewhere, and one-sided-up noise cannot erase beeps.
  EXPECT_GE(infeasible, 1);
}

TEST(ExactPosterior, ObservationC4HoldsOnExecutions) {
  // H(X | pi) <= sum_i log2 |S^i(pi)| (subadditivity + support bound).
  Rng rng(1);
  const OneSidedUpChannel channel(kEps);
  const int n = 3;
  const auto family = MakeInputSetFamily(n);
  for (int trial = 0; trial < 15; ++trial) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const ExecutionResult run = Execute(*protocol, channel, rng);
    const PosteriorResult posterior =
        ExactPosterior(*family, run.shared(), kEps);
    const auto sets = AllFeasibleSets(*family, run.shared());
    double rhs = 0.0;
    for (const auto& s : sets) {
      ASSERT_FALSE(s.empty());
      rhs += std::log2(static_cast<double>(s.size()));
    }
    EXPECT_LE(posterior.entropy_bits, rhs + 1e-9) << trial;
    // Marginal subadditivity too.
    double marginal_sum = 0.0;
    for (double h : posterior.marginal_entropy_bits) marginal_sum += h;
    EXPECT_LE(posterior.entropy_bits, marginal_sum + 1e-9);
  }
}

TEST(ExactPosterior, SupportEqualsFeasibleSetUnderOneSidedNoise) {
  Rng rng(2);
  const OneSidedUpChannel channel(kEps);
  const int n = 3;
  const auto family = MakeInputSetFamily(n);
  const InputSetInstance instance = SampleInputSet(n, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const ExecutionResult run = Execute(*protocol, channel, rng);
  const PosteriorResult posterior =
      ExactPosterior(*family, run.shared(), kEps);
  const auto sets = AllFeasibleSets(*family, run.shared());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(posterior.support_size[i], sets[i].size());
  }
}

TEST(ExactPosterior, ShortTranscriptsLeaveEntropyNearPrior) {
  // The information-theoretic heart of Lemma C.5: a T-bit transcript can
  // remove at most T bits of entropy.
  Rng rng(3);
  const OneSidedUpChannel channel(kEps);
  const int n = 3;
  const auto family = MakeInputSetFamily(n);
  const double prior_bits = n * std::log2(2.0 * n);
  for (int trial = 0; trial < 10; ++trial) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const ExecutionResult run = Execute(*protocol, channel, rng);
    const PosteriorResult posterior =
        ExactPosterior(*family, run.shared(), kEps);
    EXPECT_GE(posterior.entropy_bits,
              prior_bits - static_cast<double>(run.shared().size()) - 1e-9);
  }
}

TEST(ExactPosterior, RejectsOversizedEnumeration) {
  const auto family = MakeInputSetFamily(16);  // 32^16 vectors: way too big
  EXPECT_THROW((void)ExactPosterior(*family, BitString(), kEps),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
