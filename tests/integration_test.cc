// End-to-end integration: every simulator against every workload family
// over the channels it claims to handle, judged by task-level correctness
// (the outputs every party computes), not just transcript equality.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "channel/shared_randomness.h"
#include "coding/hierarchical_sim.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "tasks/adaptive_find.h"
#include "tasks/bit_exchange.h"
#include "tasks/counting.h"
#include "tasks/input_set.h"
#include "tasks/leader_election.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

// A workload: builds a fresh instance + protocol and can judge outputs.
struct Workload {
  std::string label;
  std::function<std::unique_ptr<Protocol>(Rng&)> make;
  std::function<bool(const std::vector<PartyOutput>&)> judge;
};

Workload MakeInputSetWorkload(int n, Rng& rng) {
  auto instance = std::make_shared<InputSetInstance>(SampleInputSet(n, rng));
  return Workload{
      "input-set",
      [instance](Rng&) { return MakeInputSetProtocol(*instance); },
      [instance](const std::vector<PartyOutput>& outputs) {
        return InputSetAllCorrect(*instance, outputs);
      }};
}

Workload MakeLeaderWorkload(int n, Rng& rng) {
  auto instance = std::make_shared<LeaderElectionInstance>(
      SampleLeaderElection(n, 12, rng));
  return Workload{
      "leader-election",
      [instance](Rng&) { return MakeLeaderElectionProtocol(*instance); },
      [instance](const std::vector<PartyOutput>& outputs) {
        return LeaderElectionAllCorrect(*instance, outputs);
      }};
}

Workload MakeBitExchangeWorkload(int n, Rng& rng) {
  auto instance = std::make_shared<BitExchangeInstance>(
      SampleBitExchange(n, 8, rng));
  return Workload{
      "bit-exchange",
      [instance](Rng&) { return MakeBitExchangeProtocol(*instance); },
      [instance](const std::vector<PartyOutput>& outputs) {
        return BitExchangeAllCorrect(*instance, outputs);
      }};
}

Workload MakeAdaptiveWorkload(int n, Rng& rng) {
  auto instance = std::make_shared<AdaptiveFindInstance>(
      SampleAdaptiveFind(n, 0.2, rng));
  return Workload{
      "adaptive-find",
      [instance](Rng&) { return MakeAdaptiveFindProtocol(*instance); },
      [instance](const std::vector<PartyOutput>& outputs) {
        return AdaptiveFindAllCorrect(*instance, outputs);
      }};
}

// Runs `trials` independent (instance, simulation) pairs and returns the
// number judged fully correct.
int RunMatrixCell(const Simulator& sim, const Channel& channel,
                  const std::function<Workload(int, Rng&)>& workload_factory,
                  int n, int trials, std::uint64_t seed) {
  Rng rng(seed);
  int correct = 0;
  for (int t = 0; t < trials; ++t) {
    const Workload workload = workload_factory(n, rng);
    const auto protocol = workload.make(rng);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += !result.budget_exhausted() && workload.judge(result.outputs);
  }
  return correct;
}

using Factory = std::function<Workload(int, Rng&)>;

const std::vector<std::pair<std::string, Factory>>& Workloads() {
  static const std::vector<std::pair<std::string, Factory>> kAll = {
      {"input-set", MakeInputSetWorkload},
      {"leader-election", MakeLeaderWorkload},
      {"bit-exchange", MakeBitExchangeWorkload},
      {"adaptive-find", MakeAdaptiveWorkload},
  };
  return kAll;
}

TEST(Integration, RewindTwoSidedAcrossAllWorkloads) {
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  for (const auto& [label, factory] : Workloads()) {
    const int correct = RunMatrixCell(sim, channel, factory, 12, 8, 1234);
    EXPECT_GE(correct, 7) << label;
  }
}

TEST(Integration, HierarchicalTwoSidedAcrossAllWorkloads) {
  const CorrelatedNoisyChannel channel(0.05);
  const HierarchicalSimulator sim;
  for (const auto& [label, factory] : Workloads()) {
    const int correct = RunMatrixCell(sim, channel, factory, 12, 8, 4321);
    EXPECT_GE(correct, 7) << label;
  }
}

TEST(Integration, RepetitionSimAcrossAllWorkloads) {
  const CorrelatedNoisyChannel channel(0.05);
  const RepetitionSimulator sim(RepetitionSimOptions{.rep_c = 5});
  for (const auto& [label, factory] : Workloads()) {
    const int correct = RunMatrixCell(sim, channel, factory, 12, 8, 777);
    EXPECT_GE(correct, 7) << label;
  }
}

TEST(Integration, RewindOnOneSidedUpChannel) {
  // The lower bound's own channel model.
  const OneSidedUpChannel channel(1.0 / 3.0);
  RewindSimOptions options;
  options.rep_c = 5;  // eps = 1/3 needs heavier repetition
  const RewindSimulator sim(options);
  const int correct =
      RunMatrixCell(sim, channel, MakeInputSetWorkload, 10, 8, 99);
  EXPECT_GE(correct, 7);
}

TEST(Integration, DownOnlyPresetOnDownChannel) {
  const OneSidedDownChannel channel(0.1);
  const RewindSimulator sim(RewindSimOptions::DownOnly());
  for (const auto& [label, factory] : Workloads()) {
    const int correct = RunMatrixCell(sim, channel, factory, 12, 8, 55);
    EXPECT_GE(correct, 7) << label;
  }
}

TEST(Integration, RepetitionSimOnIndependentNoise) {
  // Theorem 1.2's scheme family also covers independent noise; the
  // repetition core is the piece that transfers most directly.
  const IndependentNoisyChannel channel(0.05);
  const RepetitionSimulator sim(RepetitionSimOptions{.rep_c = 5});
  for (const auto& [label, factory] : Workloads()) {
    const int correct = RunMatrixCell(sim, channel, factory, 12, 8, 22);
    EXPECT_GE(correct, 7) << label;
  }
}

TEST(Integration, RewindOnSharedRandomnessCompositeChannel) {
  // The A.1.2 reduction channel (effective two-sided 1/4 noise) -- the
  // harshest correlated channel in the suite.
  const auto channel = SharedRandomnessOneSidedAdapter::PaperInstance();
  RewindSimOptions options;
  options.rep_c = 8;
  options.flag_reps = 40;
  options.code_length_factor = 10;
  const RewindSimulator sim(options);
  const int correct =
      RunMatrixCell(sim, channel, MakeInputSetWorkload, 8, 6, 31);
  EXPECT_GE(correct, 5);
}

TEST(Integration, CountingPipelineEndToEnd) {
  // Counting has a tolerance-based judge, exercised separately.
  Rng rng(66);
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  int good = 0;
  constexpr int kTrials = 6;
  for (int t = 0; t < kTrials; ++t) {
    const CountingInstance instance = SampleCounting(24, 8, 9, rng);
    const auto protocol = MakeCountingProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    good += !result.budget_exhausted() &&
            CountingAllWithinFactor(instance, result.outputs, 8.0);
  }
  EXPECT_GE(good, kTrials - 1);
}

TEST(Integration, ScheduledPresetOnItsNativeWorkload) {
  // The EKS18-style regime end to end: schedule-owned BitExchange under
  // two-sided noise, constant-overhead parameters.
  Rng rng(88);
  const CorrelatedNoisyChannel channel(0.05);
  int correct = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const BitExchangeInstance instance = SampleBitExchange(12, 8, rng);
    const RewindSimulator sim(
        RewindSimOptions::Scheduled(BitExchangeSchedule(12, 8)));
    const auto protocol = MakeBitExchangeProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += !result.budget_exhausted() &&
               BitExchangeAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(Integration, NoiseWithoutCodingBreaksEverything) {
  // Control cell: direct execution (repetition r=1) fails on all
  // workloads except the very short adaptive-find occasionally.
  const CorrelatedNoisyChannel channel(0.1);
  const RepetitionSimulator sim(RepetitionSimOptions{.rep_factor = 1});
  int correct = RunMatrixCell(sim, channel, MakeBitExchangeWorkload, 12, 8, 5);
  EXPECT_LE(correct, 1);
  correct = RunMatrixCell(sim, channel, MakeInputSetWorkload, 12, 8, 6);
  EXPECT_LE(correct, 1);
}

}  // namespace
}  // namespace noisybeeps
