// Phase accounting: every simulator labels where its noisy rounds go, the
// labels partition the total, and the split matches the scheme's design
// (e.g. the down-only preset never runs an owner phase).
#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/one_sided.h"
#include "coding/hierarchical_sim.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

std::int64_t PhaseSum(const SimulationResult& result) {
  std::int64_t total = 0;
  for (const auto& [phase, rounds] : result.phase_rounds) total += rounds;
  return total;
}

TEST(PhaseAccounting, RepetitionSimIsAllRepetition) {
  Rng rng(1);
  const CorrelatedNoisyChannel channel(0.05);
  const RepetitionSimulator sim;
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_EQ(PhaseSum(result), result.noisy_rounds_used);
  ASSERT_EQ(result.phase_rounds.size(), 1u);
  EXPECT_EQ(result.phase_rounds.begin()->first, "repetition");
}

TEST(PhaseAccounting, RewindTwoSidedHasAllThreePhases) {
  Rng rng(2);
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  const InputSetInstance instance = SampleInputSet(12, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_EQ(PhaseSum(result), result.noisy_rounds_used);
  EXPECT_TRUE(result.phase_rounds.count("chunk-sim"));
  EXPECT_TRUE(result.phase_rounds.count("owner-finding"));
  EXPECT_TRUE(result.phase_rounds.count("verify-flags"));
  // The owner phase dominates at these parameters (it is the log n tax).
  EXPECT_GT(result.phase_rounds.at("owner-finding"),
            result.phase_rounds.at("chunk-sim"));
}

TEST(PhaseAccounting, DownOnlyPresetSkipsOwners) {
  Rng rng(3);
  const OneSidedDownChannel channel(0.1);
  const RewindSimulator sim(RewindSimOptions::DownOnly());
  const InputSetInstance instance = SampleInputSet(12, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_EQ(PhaseSum(result), result.noisy_rounds_used);
  EXPECT_EQ(result.phase_rounds.count("owner-finding"), 0u);
  EXPECT_TRUE(result.phase_rounds.count("chunk-sim"));
  EXPECT_TRUE(result.phase_rounds.count("verify-flags"));
}

TEST(PhaseAccounting, HierarchicalAddsAuditPhase) {
  Rng rng(4);
  const CorrelatedNoisyChannel channel(0.05);
  const HierarchicalSimulator sim;
  const InputSetInstance instance = SampleInputSet(12, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_EQ(PhaseSum(result), result.noisy_rounds_used);
  EXPECT_TRUE(result.phase_rounds.count("audit"));
  // The audit tax must be a minority of the budget.
  EXPECT_LT(result.phase_rounds.at("audit"), result.noisy_rounds_used / 2);
}

}  // namespace
}  // namespace noisybeeps
