#include "fault/injection.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "coding/hierarchical_sim.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "fault/fault_plan.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

// Runs one noisy round where exactly the parties in `beepers` beep, and
// returns the per-party received bits.
std::vector<std::uint8_t> OneRound(RoundEngine& engine,
                                   std::vector<std::uint8_t> beeps) {
  const auto received = engine.Round(beeps);
  return {received.begin(), received.end()};
}

TEST(FaultInjector, RejectsPlansNamingAbsentParties) {
  FaultPlan plan;
  plan.CrashStop(5, 0);
  EXPECT_THROW(FaultInjector(plan, 5), std::invalid_argument);
  EXPECT_NO_THROW(FaultInjector(plan, 6));
}

TEST(FaultyRoundEngine, CrashStopSilencesAndDeafens) {
  const NoiselessChannel channel;
  Rng rng(1);
  FaultPlan plan;
  plan.CrashStop(0, 2);
  FaultyRoundEngine engine(channel, rng, 2, plan);

  // Rounds 0 and 1: party 0 still works.
  EXPECT_EQ(OneRound(engine, {1, 0}), (std::vector<std::uint8_t>{1, 1}));
  EXPECT_EQ(OneRound(engine, {1, 0}), (std::vector<std::uint8_t>{1, 1}));
  // From round 2 on: its beep is suppressed (the OR drops to 0) and its
  // own received bit is forced to 0 even when another party beeps.
  EXPECT_EQ(OneRound(engine, {1, 0}), (std::vector<std::uint8_t>{0, 0}));
  EXPECT_EQ(OneRound(engine, {0, 1}), (std::vector<std::uint8_t>{0, 1}));
}

TEST(FaultyRoundEngine, SleepyIsCrashLimitedToAWindow) {
  const NoiselessChannel channel;
  Rng rng(1);
  FaultPlan plan;
  plan.Sleepy(0, 1, 2);
  FaultyRoundEngine engine(channel, rng, 2, plan);

  EXPECT_EQ(OneRound(engine, {1, 0}), (std::vector<std::uint8_t>{1, 1}));
  EXPECT_EQ(OneRound(engine, {1, 0}), (std::vector<std::uint8_t>{0, 0}));
  EXPECT_EQ(OneRound(engine, {0, 1}), (std::vector<std::uint8_t>{0, 1}));
  // Round 3: awake again.
  EXPECT_EQ(OneRound(engine, {1, 0}), (std::vector<std::uint8_t>{1, 1}));
}

TEST(FaultyRoundEngine, StuckBeeperForcesTheOrHigh) {
  const NoiselessChannel channel;
  Rng rng(1);
  FaultPlan plan;
  plan.StuckBeeper(1, 0, 1);
  FaultyRoundEngine engine(channel, rng, 3, plan);

  // Nobody intends to beep, but party 1 is stuck: everyone hears 1.
  EXPECT_EQ(OneRound(engine, {0, 0, 0}),
            (std::vector<std::uint8_t>{1, 1, 1}));
  EXPECT_EQ(OneRound(engine, {0, 0, 0}),
            (std::vector<std::uint8_t>{1, 1, 1}));
  // Window over: silence is silence again.
  EXPECT_EQ(OneRound(engine, {0, 0, 0}),
            (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(FaultyRoundEngine, DeafReceiverStillBeepsButHearsNothing) {
  const NoiselessChannel channel;
  Rng rng(1);
  FaultPlan plan;
  plan.DeafReceiver(0, 0, 0);
  FaultyRoundEngine engine(channel, rng, 2, plan);

  // Party 0's beep still reaches party 1, but party 0 itself hears 0.
  EXPECT_EQ(OneRound(engine, {1, 0}), (std::vector<std::uint8_t>{0, 1}));
  // Window over.
  EXPECT_EQ(OneRound(engine, {1, 0}), (std::vector<std::uint8_t>{1, 1}));
}

TEST(FaultyRoundEngine, BabblerIsDeterministicInThePlanSeed) {
  const NoiselessChannel channel;
  FaultPlan plan(123);
  plan.Babbler(0, 0, 999, 0.5);

  auto run = [&] {
    Rng rng(1);
    FaultyRoundEngine engine(channel, rng, 2, plan);
    std::vector<std::uint8_t> heard;
    for (int r = 0; r < 64; ++r) {
      heard.push_back(OneRound(engine, {0, 0})[1]);
    }
    return heard;
  };
  const std::vector<std::uint8_t> first = run();
  EXPECT_EQ(run(), first);  // same plan seed -> same babble
  // A fair babbler over 64 silent rounds beeps at least once and stays
  // silent at least once (probability 2^-63 otherwise).
  std::size_t ones = 0;
  for (std::uint8_t b : first) ones += b;
  EXPECT_GT(ones, 0u);
  EXPECT_LT(ones, 64u);

  // A different plan seed gives a different stream.
  FaultPlan other(124);
  other.Babbler(0, 0, 999, 0.5);
  Rng rng(1);
  FaultyRoundEngine engine(channel, rng, 2, other);
  std::vector<std::uint8_t> heard;
  for (int r = 0; r < 64; ++r) {
    heard.push_back(OneRound(engine, {0, 0})[1]);
  }
  EXPECT_NE(heard, first);
}

TEST(FaultyRoundEngine, BabblerStreamIsIndependentOfTheChannelRng) {
  // The babbler must not consume channel randomness: its beep sequence is
  // identical whether the channel rng starts at seed 1 or seed 2.
  const NoiselessChannel channel;
  FaultPlan plan(5);
  plan.Babbler(0, 0, 999, 0.5);
  auto run = [&](std::uint64_t channel_seed) {
    Rng rng(channel_seed);
    FaultyRoundEngine engine(channel, rng, 2, plan);
    std::vector<std::uint8_t> heard;
    for (int r = 0; r < 32; ++r) {
      heard.push_back(OneRound(engine, {0, 0})[1]);
    }
    return heard;
  };
  EXPECT_EQ(run(1), run(2));
}

TEST(FaultyRoundEngine, OverlappingSpecsComposeInPlanOrder) {
  const NoiselessChannel channel;
  Rng rng(1);
  // Party 0 is both stuck and (later in the plan) crashed over the same
  // window: the LAST active spec wins, so it stays silent.
  FaultPlan plan;
  plan.StuckBeeper(0, 0, 9).CrashStop(0, 0);
  FaultyRoundEngine engine(channel, rng, 2, plan);
  EXPECT_EQ(OneRound(engine, {0, 0}), (std::vector<std::uint8_t>{0, 0}));

  // Reversed order: the stuck spec overrides the crash on the send side.
  Rng rng2(1);
  FaultPlan reversed;
  reversed.CrashStop(0, 0).StuckBeeper(0, 0, 9);
  FaultyRoundEngine engine2(channel, rng2, 2, reversed);
  EXPECT_EQ(OneRound(engine2, {0, 0}), (std::vector<std::uint8_t>{0, 1}));
}

TEST(FaultExecute, EmptyPlanReproducesPlainExecuteBitForBit) {
  Rng setup(7);
  const InputSetInstance instance = SampleInputSet(6, setup);
  const auto protocol = MakeInputSetProtocol(instance);
  const CorrelatedNoisyChannel channel(0.2);

  Rng a(42);
  const ExecutionResult plain = Execute(*protocol, channel, a);
  Rng b(42);
  const ExecutionResult faulted = Execute(*protocol, channel, FaultPlan(), b);
  EXPECT_EQ(faulted.transcripts, plain.transcripts);
  EXPECT_EQ(faulted.outputs, plain.outputs);
}

TEST(FaultExecute, CrashedPartyChangesTheSharedTranscript) {
  Rng setup(8);
  const InputSetInstance instance = SampleInputSet(4, setup);
  const auto protocol = MakeInputSetProtocol(instance);
  const NoiselessChannel channel;

  Rng a(1);
  const ExecutionResult reference = Execute(*protocol, channel, a);
  FaultPlan plan;
  plan.CrashStop(0, 0);
  Rng b(1);
  const ExecutionResult faulted = Execute(*protocol, channel, plan, b);
  // Party 0 announces its input-set membership by beeping; with it dead
  // from round 0 the noiseless shared transcript must change.
  EXPECT_NE(faulted.shared(), reference.shared());
}

// The golden zero-fault no-op, pinned for every simulator: Simulate with
// an explicitly empty FaultPlan is bit-for-bit the 3-arg fault-free path.
template <typename Sim>
void ExpectEmptyPlanIsANoOp(const Sim& sim) {
  Rng setup(11);
  const InputSetInstance instance = SampleInputSet(8, setup);
  const auto protocol = MakeInputSetProtocol(instance);
  const CorrelatedNoisyChannel channel(0.05);

  Rng a(99);
  const SimulationResult plain = sim.Simulate(*protocol, channel, a);
  Rng b(99);
  const SimulationResult faulted =
      sim.Simulate(*protocol, channel, FaultPlan(), b);
  EXPECT_EQ(faulted.transcripts, plain.transcripts);
  EXPECT_EQ(faulted.outputs, plain.outputs);
  EXPECT_EQ(faulted.noisy_rounds_used, plain.noisy_rounds_used);
  EXPECT_EQ(faulted.verdict.status, plain.verdict.status);
}

TEST(FaultGoldenNoOp, Repetition) {
  ExpectEmptyPlanIsANoOp(RepetitionSimulator());
}

TEST(FaultGoldenNoOp, Rewind) { ExpectEmptyPlanIsANoOp(RewindSimulator()); }

TEST(FaultGoldenNoOp, RewindDown) {
  ExpectEmptyPlanIsANoOp(RewindSimulator(RewindSimOptions::DownOnly()));
}

TEST(FaultGoldenNoOp, Hierarchical) {
  ExpectEmptyPlanIsANoOp(HierarchicalSimulator());
}

TEST(FaultSimulate, SameSeedAndPlanReproduceBitIdentically) {
  Rng setup(13);
  const InputSetInstance instance = SampleInputSet(6, setup);
  const auto protocol = MakeInputSetProtocol(instance);
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  FaultPlan plan(77);
  plan.Babbler(1, 0, 300, 0.3).Sleepy(2, 50, 120);

  auto run = [&] {
    Rng rng(5);
    return sim.Simulate(*protocol, channel, plan, rng);
  };
  const SimulationResult first = run();
  const SimulationResult second = run();
  EXPECT_EQ(second.transcripts, first.transcripts);
  EXPECT_EQ(second.noisy_rounds_used, first.noisy_rounds_used);
  EXPECT_EQ(second.verdict.status, first.verdict.status);
  EXPECT_EQ(second.verdict.agreement, first.verdict.agreement);
  EXPECT_EQ(second.verdict.first_divergent_phase,
            first.verdict.first_divergent_phase);
}

TEST(FaultSimulate, HealthyMajoritySurvivesADeafParty) {
  // Independent channel + deaf party: the afflicted party's transcript may
  // drift, but the other parties must still agree among themselves -- the
  // degradation is graceful, never total.
  Rng setup(17);
  const InputSetInstance instance = SampleInputSet(8, setup);
  const auto protocol = MakeInputSetProtocol(instance);
  const IndependentNoisyChannel channel(0.02);
  const RepetitionSimulator sim;
  FaultPlan plan;
  plan.DeafReceiver(3, 0, FaultSpec::kNoLastRound - 1);

  Rng rng(3);
  const SimulationResult result = sim.Simulate(*protocol, channel, plan, rng);
  ASSERT_EQ(result.verdict.agreement.size(), 8u);
  EXPECT_GE(result.verdict.majority_size, 7);
  EXPECT_NE(result.verdict.status, SimulationStatus::kFailed);
  // The majority transcript is the healthy parties' common one.
  EXPECT_EQ(result.verdict.majority_transcript, result.transcripts[0]);
}

TEST(ComputeVerdict, UnanimousFullLengthIsOk) {
  const BitString t({1, 0, 1});
  const SimulationVerdict v = ComputeVerdict({t, t, t}, 3, false);
  EXPECT_EQ(v.status, SimulationStatus::kOk);
  EXPECT_EQ(v.agreement, (std::vector<int>{3, 3, 3}));
  EXPECT_EQ(v.majority_size, 3);
  EXPECT_EQ(v.majority_transcript, t);
  EXPECT_FALSE(v.budget_exhausted);
}

TEST(ComputeVerdict, StrictMajorityIsDegraded) {
  const BitString good({1, 0, 1});
  const BitString bad({0, 0, 0});
  const SimulationVerdict v = ComputeVerdict({good, good, bad}, 3, false);
  EXPECT_EQ(v.status, SimulationStatus::kDegraded);
  EXPECT_EQ(v.agreement, (std::vector<int>{2, 2, 1}));
  EXPECT_EQ(v.majority_size, 2);
  EXPECT_EQ(v.majority_transcript, good);
}

TEST(ComputeVerdict, NoStrictMajorityIsFailed) {
  const BitString a({1, 1});
  const BitString b({0, 0});
  const SimulationVerdict v = ComputeVerdict({a, a, b, b}, 2, false);
  EXPECT_EQ(v.status, SimulationStatus::kFailed);
  EXPECT_EQ(v.majority_size, 2);
  // Tied pluralities break toward the lexicographically least transcript.
  EXPECT_EQ(v.majority_transcript, b);
}

TEST(ComputeVerdict, BudgetExhaustionDemotesOkToDegraded) {
  const BitString t({1, 0});
  const SimulationVerdict v = ComputeVerdict({t, t}, 4, true);
  EXPECT_EQ(v.status, SimulationStatus::kDegraded);
  EXPECT_TRUE(v.budget_exhausted);
  // A short transcript is never kOk even without the flag.
  EXPECT_EQ(ComputeVerdict({t, t}, 4, false).status,
            SimulationStatus::kDegraded);
}

TEST(ComputeVerdict, StatusNamesAreStable) {
  EXPECT_EQ(SimulationStatusName(SimulationStatus::kOk), "ok");
  EXPECT_EQ(SimulationStatusName(SimulationStatus::kDegraded), "degraded");
  EXPECT_EQ(SimulationStatusName(SimulationStatus::kFailed), "failed");
}

}  // namespace
}  // namespace noisybeeps
