#include "coding/rewind_sim.h"

#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "tasks/adaptive_find.h"
#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "tasks/leader_election.h"
#include "util/math.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(RewindSim, NoiselessChannelIsExactWithOwners) {
  Rng rng(1);
  const NoiselessChannel channel;
  const RewindSimulator sim;
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  const BitString reference = ReferenceTranscript(*protocol);
  EXPECT_TRUE(result.AllMatch(reference));
  EXPECT_FALSE(result.budget_exhausted());
  // Every 1 of the committed transcript carries a valid owner.
  for (std::size_t m = 0; m < reference.size(); ++m) {
    if (reference[m]) {
      const int owner = result.owners[0][m];
      ASSERT_GE(owner, 0) << m;
      EXPECT_EQ(instance.inputs[owner], static_cast<int>(m));
    }
  }
}

class RewindTwoSidedTest : public ::testing::TestWithParam<double> {};

TEST_P(RewindTwoSidedTest, RecoversInputSetUnderTwoSidedNoise) {
  const double eps = GetParam();
  Rng rng(42);
  const CorrelatedNoisyChannel channel(eps);
  const RewindSimulator sim;
  int correct = 0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(16, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += !result.budget_exhausted() &&
               result.AllMatch(ReferenceTranscript(*protocol)) &&
               InputSetAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(NoiseRates, RewindTwoSidedTest,
                         ::testing::Values(0.02, 0.05, 0.10));

TEST(RewindSim, RecoversBitExchangeUnderOneSidedUpNoise) {
  // The lower-bound channel itself (one-sided-up), moderate rate.
  Rng rng(43);
  const OneSidedUpChannel channel(0.1);
  const RewindSimulator sim;
  int correct = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const BitExchangeInstance instance = SampleBitExchange(10, 6, rng);
    const auto protocol = MakeBitExchangeProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += BitExchangeAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(RewindSim, RecoversAdaptiveProtocol) {
  Rng rng(44);
  const CorrelatedNoisyChannel channel(0.08);
  const RewindSimulator sim;
  int correct = 0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    const AdaptiveFindInstance instance = SampleAdaptiveFind(32, 0.2, rng);
    const auto protocol = MakeAdaptiveFindProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += AdaptiveFindAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(RewindSim, DownOnlyPresetRecoversUnderDownNoise) {
  Rng rng(45);
  const OneSidedDownChannel channel(0.15);
  const RewindSimulator sim(RewindSimOptions::DownOnly());
  int correct = 0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(16, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += result.AllMatch(ReferenceTranscript(*protocol));
  }
  EXPECT_GE(correct, kTrials - 1);
}

TEST(RewindSim, DownOnlyOverheadIsConstantInN) {
  // The Section 2 asymmetry: the down-only preset's blowup must not grow
  // with n (compare 8 vs 128 parties).
  Rng rng(46);
  const OneSidedDownChannel channel(0.1);
  const RewindSimulator sim(RewindSimOptions::DownOnly());
  std::vector<double> overhead;
  for (int n : {8, 128}) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol))) << n;
    overhead.push_back(static_cast<double>(result.noisy_rounds_used) /
                       protocol->length());
  }
  // Allow slack, but the 16x larger instance must not cost log-fold more.
  EXPECT_LT(overhead[1], overhead[0] * 1.5 + 1.0);
}

TEST(RewindSim, TwoSidedOverheadIsLogarithmic) {
  Rng rng(47);
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  for (int n : {8, 64}) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
    const double overhead =
        static_cast<double>(result.noisy_rounds_used) / protocol->length();
    const double log_n = CeilLog2(static_cast<std::uint64_t>(n));
    // Overhead should be within a constant band of log2(n).
    EXPECT_GT(overhead, log_n * 0.5);
    EXPECT_LT(overhead, log_n * 40.0);
  }
}

TEST(RewindSim, TinyBudgetExhaustsGracefully) {
  Rng rng(48);
  const CorrelatedNoisyChannel channel(0.2);
  RewindSimOptions options;
  options.max_rounds = 50;  // far below what a 16-party InputSet needs
  const RewindSimulator sim(options);
  const InputSetInstance instance = SampleInputSet(16, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_TRUE(result.budget_exhausted());
  EXPECT_LE(result.noisy_rounds_used, 50 + 20000);  // one overshoot loop max
  // Outputs still produced (padded transcript).
  EXPECT_EQ(result.outputs.size(), 16u);
}

TEST(RewindSim, EffectiveParameterDefaults) {
  const RewindSimulator two_sided;
  EXPECT_EQ(two_sided.EffectiveChunkLen(32), 32);
  EXPECT_EQ(two_sided.EffectiveRepFactor(32), 3 * 5 + 1);
  EXPECT_EQ(two_sided.EffectiveFlagReps(32), 4 * 5 + 8);
  const RewindSimulator down(RewindSimOptions::DownOnly());
  EXPECT_EQ(down.EffectiveChunkLen(32), 8);
  EXPECT_EQ(down.EffectiveRepFactor(32), 1);
  EXPECT_EQ(down.EffectiveFlagReps(32), 5);
}

TEST(RewindSim, RejectsBadOptions) {
  RewindSimOptions bad;
  bad.chunk_len = -1;
  EXPECT_THROW(RewindSimulator{bad}, std::invalid_argument);
  RewindSimOptions bad2;
  bad2.rep_c = 0;
  EXPECT_THROW(RewindSimulator{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
