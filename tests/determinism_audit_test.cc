// The determinism race-audit: the library's own race detector.
//
// ParallelTrials documents that its results are bit-identical for EVERY
// worker count (determinism by construction: one Rng split per trial, one
// write slot per trial).  This audit holds the claim to account on the
// five representative workloads of the reproduction -- repetition
// simulation, chunk simulation, the hierarchical A_l scheme, owner
// finding, and the InputSet_n progress measure -- by fingerprinting every
// trial's full result at 1, 2, and hardware_concurrency workers and
// asserting bit-identical fingerprints.  A rewind run under a five-party
// FaultPlan rides along, pinning the fault layer to the same contract
// (babbler streams derive from the plan seed, never from shared state).
// Any cross-trial Rng sharing,
// shared mutable channel state, or racy result write shows up here as a
// fingerprint mismatch (and under TSan as a reported race; CI runs both).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "channel/correlated.h"
#include "failpoint/fail_plan.h"
#include "failpoint/fs.h"
#include "resilience/checkpoint.h"
#include "resilience/resilient_trials.h"
#include "coding/beep_code.h"
#include "coding/chunk_sim.h"
#include "coding/hierarchical_sim.h"
#include "coding/owner_finding.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "analysis/progress_measure.h"
#include "channel/independent.h"
#include "fault/fault_plan.h"
#include "fault/injection.h"
#include "protocol/round_engine.h"
#include "resilience/clock.h"
#include "service/protocol.h"
#include "service/service.h"
#include "tasks/input_set.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

// FNV-1a over 64-bit words: cheap, deterministic, and sensitive to every
// bit of the mixed-in values.
class Fingerprint {
 public:
  void Mix(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ = (hash_ ^ ((v >> (8 * byte)) & 0xff)) * 0x100000001b3ULL;
    }
  }
  void MixDouble(double d) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof d);
    std::memcpy(&bits, &d, sizeof bits);
    Mix(bits);
  }
  void MixBits(const BitString& bits) {
    Mix(bits.size());
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      word = (word << 1) | static_cast<std::uint64_t>(bits[i]);
      if (i % 64 == 63) {
        Mix(word);
        word = 0;
      }
    }
    Mix(word);
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;
};

std::uint64_t FingerprintSimulation(const SimulationResult& result) {
  Fingerprint fp;
  for (const BitString& t : result.transcripts) fp.MixBits(t);
  for (const auto& per_party : result.owners) {
    fp.Mix(per_party.size());
    for (int owner : per_party) fp.Mix(static_cast<std::uint64_t>(owner));
  }
  for (const PartyOutput& out : result.outputs) {
    fp.Mix(out.size());
    for (std::uint64_t word : out) fp.Mix(word);
  }
  fp.Mix(static_cast<std::uint64_t>(result.noisy_rounds_used));
  fp.Mix(result.budget_exhausted() ? 1 : 0);
  fp.Mix(static_cast<std::uint64_t>(result.verdict.status));
  for (int a : result.verdict.agreement) {
    fp.Mix(static_cast<std::uint64_t>(a));
  }
  fp.Mix(static_cast<std::uint64_t>(result.verdict.majority_size));
  fp.MixBits(result.verdict.majority_transcript);
  for (char c : result.verdict.first_divergent_phase) {
    fp.Mix(static_cast<std::uint64_t>(c));
  }
  fp.Mix(static_cast<std::uint64_t>(result.verdict.first_divergence_round));
  for (const auto& [phase, rounds] : result.phase_rounds) {
    for (char c : phase) fp.Mix(static_cast<std::uint64_t>(c));
    fp.Mix(static_cast<std::uint64_t>(rounds));
  }
  return fp.value();
}

constexpr int kTrials = 24;

// Every workload returns one fingerprint per trial plus, as a final
// element, the parent Rng's next output -- so a workload whose scheduling
// leaked into the parent stream also fails the audit.
template <typename Body>
std::vector<std::uint64_t> RunWorkload(std::uint64_t seed, Body&& body,
                                       int num_workers) {
  Rng rng(seed);
  std::vector<std::uint64_t> prints =
      ParallelTrials(kTrials, rng, body, num_workers);
  prints.push_back(rng.NextU64());
  return prints;
}

std::vector<int> WorkerCounts() {
  int hc = static_cast<int>(std::thread::hardware_concurrency());
  if (hc < 2) hc = 2;  // still exercises the threaded path
  return {1, 2, hc};
}

// Runs `body` at 1, 2, and hardware_concurrency workers and asserts
// bit-identical per-trial fingerprints.
template <typename Body>
void AuditWorkload(const char* name, std::uint64_t seed, Body&& body) {
  const std::vector<std::uint64_t> serial = RunWorkload(seed, body, 1);
  ASSERT_EQ(serial.size(), static_cast<std::size_t>(kTrials) + 1) << name;
  for (int workers : WorkerCounts()) {
    const std::vector<std::uint64_t> parallel =
        RunWorkload(seed, body, workers);
    EXPECT_EQ(parallel, serial)
        << name << ": results differ between 1 and " << workers
        << " workers -- the determinism-by-construction contract is broken";
  }
}

TEST(DeterminismAudit, RepetitionSimulation) {
  AuditWorkload("repetition-sim", 101, [](int, Rng& rng) {
    const InputSetInstance instance = SampleInputSet(8, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const CorrelatedNoisyChannel channel(0.1);
    const RepetitionSimulator sim;
    return FingerprintSimulation(sim.Simulate(*protocol, channel, rng));
  });
}

TEST(DeterminismAudit, ChunkSimulationWithOwnerPhase) {
  AuditWorkload("chunk-sim", 202, [](int, Rng& rng) {
    constexpr int kParties = 6;
    constexpr int kChunk = 8;
    const InputSetInstance instance = SampleInputSet(kParties, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const CorrelatedNoisyChannel channel(0.1);
    const BeepCode code(kChunk, 6, 11);
    RoundEngine engine(channel, rng, kParties);
    const std::vector<BitString> committed(kParties, BitString());
    const ChunkAttempt attempt =
        SimulateChunk(*protocol, committed, 0, kChunk, 3, &code, engine);
    Fingerprint fp;
    for (const BitString& c : attempt.candidate) fp.MixBits(c);
    for (const BitString& b : attempt.beeped) fp.MixBits(b);
    for (const auto& per_party : attempt.owners) {
      for (int owner : per_party) fp.Mix(static_cast<std::uint64_t>(owner));
    }
    fp.Mix(static_cast<std::uint64_t>(engine.rounds_used()));
    return fp.value();
  });
}

TEST(DeterminismAudit, HierarchicalSimulation) {
  AuditWorkload("hierarchical-sim", 303, [](int, Rng& rng) {
    const InputSetInstance instance = SampleInputSet(6, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const CorrelatedNoisyChannel channel(0.05);
    const HierarchicalSimulator sim;
    return FingerprintSimulation(sim.Simulate(*protocol, channel, rng));
  });
}

TEST(DeterminismAudit, FaultedRewindSimulation) {
  // The fault layer must not break the bit-identity contract: the babbler
  // streams derive from the plan seed alone and every other fault kind is
  // deterministic, so a faulted workload audits exactly like a clean one.
  // Windows are bounded so the run terminates even with five misbehavers.
  AuditWorkload("faulted-rewind-sim", 707, [](int, Rng& rng) {
    const InputSetInstance instance = SampleInputSet(8, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const CorrelatedNoisyChannel channel(0.05);
    FaultPlan plan(99);
    plan.CrashStop(1, 400)
        .Babbler(2, 0, 200, 0.3)
        .DeafReceiver(0, 50, 120)
        .Sleepy(3, 10, 60)
        .StuckBeeper(4, 5, 25);
    RewindSimOptions options;
    options.max_rounds = 20000;  // bounded: babbler runs can be expensive
    const RewindSimulator sim(options);
    return FingerprintSimulation(sim.Simulate(*protocol, channel, plan, rng));
  });
}

TEST(DeterminismAudit, OwnerFinding) {
  AuditWorkload("owner-finding", 404, [](int, Rng& rng) {
    constexpr int kParties = 6;
    constexpr int kChunk = 10;
    // Random ground truth: each party beeps ~30% of rounds; the shared
    // transcript view is the OR.
    std::vector<BitString> beeped(kParties);
    BitString pi;
    for (int m = 0; m < kChunk; ++m) {
      bool any = false;
      for (int i = 0; i < kParties; ++i) {
        const bool bit = rng.Bernoulli(0.3);
        beeped[i].PushBack(bit);
        any = any || bit;
      }
      pi.PushBack(any);
    }
    const std::vector<BitString> pi_view(kParties, pi);
    const CorrelatedNoisyChannel channel(0.05);
    const BeepCode code(kChunk, 6, 5);
    RoundEngine engine(channel, rng, kParties);
    const OwnerFindingResult result =
        FindOwners(engine, code, pi_view, beeped);
    Fingerprint fp;
    for (const auto& per_party : result.owners) {
      fp.Mix(per_party.size());
      for (int owner : per_party) fp.Mix(static_cast<std::uint64_t>(owner));
    }
    fp.Mix(static_cast<std::uint64_t>(engine.rounds_used()));
    fp.Mix(OwnersValid(result, pi, beeped) ? 1 : 0);
    return fp.value();
  });
}

TEST(DeterminismAudit, InputSetProgressMeasure) {
  AuditWorkload("progress-measure", 505, [](int, Rng& rng) {
    constexpr int kParties = 4;
    constexpr int kReps = 2;
    const auto family = MakeInputSetFamily(kParties, kReps);
    // The paper's setting: sample x, corrupt the noiseless transcript with
    // one-sided-up noise, and evaluate the exact progress measure.
    InputSetInstance instance;
    for (int i = 0; i < kParties; ++i) {
      instance.inputs.push_back(
          static_cast<int>(rng.UniformInt(2 * kParties)));
    }
    const auto protocol =
        MakeRepeatedInputSetProtocol(instance, kReps);
    BitString pi = ReferenceTranscript(*protocol);
    constexpr double kEps = 1.0 / 3.0;
    for (std::size_t m = 0; m < pi.size(); ++m) {
      if (!pi[m] && rng.Bernoulli(kEps)) pi.Set(m, true);
    }
    const RoundClasses classes =
        ClassifyRounds(*family, instance.inputs, pi);
    const ZetaResult zeta = ComputeZeta(*family, instance.inputs, pi, kEps);
    Fingerprint fp;
    fp.Mix(classes.a0);
    fp.Mix(classes.a0_prime);
    fp.Mix(classes.a_multi);
    for (std::size_t a : classes.a_single) fp.Mix(a);
    fp.Mix(classes.consistent ? 1 : 0);
    fp.MixDouble(Log2ProbPiGivenX(classes, kEps));
    fp.MixDouble(zeta.zeta);
    fp.MixDouble(zeta.log2_zeta);
    for (int g : zeta.good) fp.Mix(static_cast<std::uint64_t>(g));
    fp.Mix(zeta.event_good ? 1 : 0);
    return fp.value();
  });
}

// Chaos extension of the audit: a checkpointed sweep under a FaultingFs
// fail plan.  All checkpoint I/O happens on the engine's main thread
// between batches, so fault hit indices -- and therefore the injected
// fault SEQUENCE, not just the maths -- must be bit-identical at every
// worker count.  Same seed + same plan ==> same results, same report
// fingerprint, same per-spec fire counts.
TEST(DeterminismAudit, FaultingFsChaosWorkload) {
  namespace stdfs = std::filesystem;
  using resilience::ResilienceOptions;
  using resilience::ResilientTrials;
  using resilience::RunOutput;

  struct U64Adapter {
    [[nodiscard]] std::string Encode(const std::uint64_t& v) const {
      std::string out;
      resilience::AppendU64(out, v);
      return out;
    }
    [[nodiscard]] std::uint64_t Decode(std::string_view bytes) const {
      resilience::ByteReader reader(bytes);
      return reader.U64();
    }
    [[nodiscard]] resilience::TrialAssessment Assess(
        const std::uint64_t&) const {
      return {};
    }
  };
  const auto body = [](int t, Rng& rng) {
    return rng.NextU64() ^ static_cast<std::uint64_t>(t);
  };
  // Every degrade kind at once: a short write, a rejected rename, a
  // refused write, and latency on every sync.
  const failpoint::FailPlan plan = failpoint::FailPlan::Parse(
      "enospc:write@1:0.5;fail:rename@2;fail:write@4;latency:sync@0-*:3",
      909);

  std::vector<std::uint64_t> first_results;
  std::uint64_t first_fingerprint = 0;
  std::vector<std::int64_t> first_fires;
  for (int workers : {1, 2, 4}) {
    const std::string path =
        (stdfs::path(::testing::TempDir()) /
         ("chaos_audit_" + std::to_string(workers) + ".nbckpt"))
            .string();
    stdfs::remove(path);
    failpoint::FaultingFs fault_fs(failpoint::RealFs::Instance(), plan);
    ResilienceOptions opts;
    opts.checkpoint_path = path;
    opts.checkpoint_every = 2;
    opts.config_hash = resilience::Fnv1a64("chaos-audit");
    opts.num_workers = workers;
    opts.fs = &fault_fs;
    Rng rng(808);
    const RunOutput<std::uint64_t> run =
        ResilientTrials(10, rng, body, U64Adapter{}, opts);
    EXPECT_GT(fault_fs.TotalInjected(), 0) << workers;  // not vacuous
    if (workers == 1) {
      first_results = run.results;
      first_fingerprint = run.report.Fingerprint();
      first_fires = fault_fs.SpecFires();
      continue;
    }
    EXPECT_EQ(run.results, first_results)
        << workers << " workers: chaos perturbed the results";
    EXPECT_EQ(run.report.Fingerprint(), first_fingerprint) << workers;
    EXPECT_EQ(fault_fs.SpecFires(), first_fires)
        << workers << " workers: the injected fault sequence diverged";
    stdfs::remove(path);
  }
}

// The service determinism audit (PR 8): a fixed request sequence --
// duplicates that must hit the cache, a burst past the admission queue
// that must shed, a tight deadline that must time out -- replayed at 1,
// 2, and 4 ResilientTrials workers over fresh cache directories must
// produce byte-identical reply LINES and an identical deterministic
// ServiceReport fingerprint.  Worker count is an execution detail; the
// service's answers (and its refusals) are part of the contract.
TEST(DeterminismAudit, ServiceWorkload) {
  namespace stdfs = std::filesystem;

  const auto spec = [](std::uint64_t seed) {
    service::JobSpec s;
    s.task = "input_set";
    s.channel = "correlated";
    s.sim = "repetition";
    s.n = 8;
    s.eps = 0.05;
    s.trials = 9;
    s.seed = seed;
    return s;
  };

  std::vector<std::string> first_lines;
  std::uint64_t first_fingerprint = 0;
  for (int workers : {1, 2, 4}) {
    const stdfs::path dir = stdfs::path(::testing::TempDir()) /
                            ("service_audit_" + std::to_string(workers));
    stdfs::remove_all(dir);
    stdfs::create_directories(dir);

    resilience::FakeClock clock;
    service::ServiceOptions options;
    options.cache_dir = dir.string();
    options.clock = &clock;
    options.max_queue = 2;
    options.num_workers = workers;
    options.checkpoint_every = 4;
    service::TrialService trial_service(options);

    std::vector<std::string> lines;
    const auto submit = [&](const std::string& id,
                            const service::JobSpec& job) {
      if (std::optional<service::Reply> immediate =
              trial_service.Submit({id, job})) {
        lines.push_back(service::FormatReplyLine(*immediate));
      }
    };

    // A recompute, its cache-hit duplicate, and a second distinct job.
    submit("a1", spec(21));
    submit("a2", spec(21));
    // The queue is now full (a1 and a2 are waiting): this burst sheds.
    submit("burst1", spec(77));
    submit("burst2", spec(78));
    for (service::Reply& reply : trial_service.RunQueued()) {
      lines.push_back(service::FormatReplyLine(reply));
    }
    // A deadline shorter than the cost hint is shed deterministically.
    service::JobSpec tight = spec(79);
    tight.deadline_millis = 1;
    submit("tight", tight);
    // Round two drains the now-nonempty cache path.
    submit("a3", spec(21));
    submit("b1", spec(99));
    for (service::Reply& reply : trial_service.RunQueued()) {
      lines.push_back(service::FormatReplyLine(reply));
    }

    const std::uint64_t fingerprint = trial_service.report().Fingerprint();
    if (workers == 1) {
      first_lines = lines;
      first_fingerprint = fingerprint;
      // Sanity: the sequence exercised every verdict it was built for.
      const service::ServiceReport report = trial_service.report();
      EXPECT_EQ(report.cache_hits, 2);
      EXPECT_EQ(report.shed_queue_full, 2);
      EXPECT_EQ(report.shed_deadline, 1);
      EXPECT_EQ(report.recomputed, 2);
      continue;
    }
    EXPECT_EQ(lines, first_lines)
        << workers << " workers: the service's answers diverged";
    EXPECT_EQ(fingerprint, first_fingerprint) << workers;
  }
}

// The audit's own sanity check: a body that (wrongly) reads shared mutable
// state WOULD produce different fingerprints -- so the equality assertions
// above are not vacuous.  We verify the fingerprints differ across trials
// (the workloads are genuinely stochastic).
TEST(DeterminismAudit, FingerprintsVaryAcrossTrials) {
  Rng rng(606);
  const std::vector<std::uint64_t> prints = ParallelTrials(
      kTrials, rng,
      [](int, Rng& r) {
        const InputSetInstance instance = SampleInputSet(8, r);
        const auto protocol = MakeInputSetProtocol(instance);
        const CorrelatedNoisyChannel channel(0.1);
        const RepetitionSimulator sim;
        return FingerprintSimulation(sim.Simulate(*protocol, channel, r));
      },
      2);
  int distinct = 0;
  for (std::size_t i = 1; i < prints.size(); ++i) {
    distinct += prints[i] != prints[0];
  }
  EXPECT_GT(distinct, 0);
}

// The word-parallel round path (this PR): a packed-word workload over the
// independent channel at a party count that straddles word boundaries,
// audited in BOTH stream modes and again under a FaultPlan.  Same seed
// ==> identical received-word fingerprints at every worker count; the
// fast path's batched sampling must be exactly as deterministic as the
// scalar path it replaces.
TEST(DeterminismAudit, WordParallelRounds) {
  for (WordMode mode : {WordMode::kStreamCompat, WordMode::kFast}) {
    const std::uint64_t seed =
        mode == WordMode::kStreamCompat ? 1201 : 1202;
    AuditWorkload("word-parallel-rounds", seed, [mode](int, Rng& rng) {
      constexpr std::int64_t kParties = 200;  // 3 words + a 8-bit tail
      const IndependentNoisyChannel channel(0.05);
      RoundEngine engine(channel, rng, kParties);
      engine.SetWordMode(mode);
      std::vector<std::uint64_t> beeps(WordsForParties(kParties), 0);
      Fingerprint fp;
      for (int r = 0; r < 32; ++r) {
        // A stochastic beep pattern, masked to the valid lanes.
        for (std::uint64_t& w : beeps) w = rng.NextU64();
        beeps.back() &= TailWordMask(kParties);
        for (std::uint64_t w : engine.RoundWords(beeps)) fp.Mix(w);
      }
      fp.Mix(static_cast<std::uint64_t>(engine.rounds_used()));
      return fp.value();
    });
  }
}

TEST(DeterminismAudit, FaultedWordParallelRounds) {
  // The fault layer's word path rides the same contract: babbler streams
  // derive from the plan seed, crash/stuck/deaf masks are functions of
  // the round index, so a faulted word workload audits like a clean one.
  for (WordMode mode : {WordMode::kStreamCompat, WordMode::kFast}) {
    const std::uint64_t seed =
        mode == WordMode::kStreamCompat ? 1301 : 1302;
    AuditWorkload("faulted-word-rounds", seed, [mode](int, Rng& rng) {
      constexpr std::int64_t kParties = 130;
      const IndependentNoisyChannel channel(0.05);
      FaultPlan plan(4242);
      plan.CrashStop(3, 20)
          .StuckBeeper(64, 0, 15)
          .Babbler(70, 2, 28, 0.6)
          .DeafReceiver(129, 0, 10);
      FaultyRoundEngine engine(channel, rng, kParties, plan);
      engine.SetWordMode(mode);
      std::vector<std::uint64_t> beeps(WordsForParties(kParties), 0);
      Fingerprint fp;
      for (int r = 0; r < 32; ++r) {
        for (std::uint64_t& w : beeps) w = rng.NextU64();
        beeps.back() &= TailWordMask(kParties);
        for (std::uint64_t w : engine.RoundWords(beeps)) fp.Mix(w);
      }
      return fp.value();
    });
  }
}

}  // namespace
}  // namespace noisybeeps
