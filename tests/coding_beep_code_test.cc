#include "coding/beep_code.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ecc/code.h"
#include "util/math.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(BeepCode, MessageSpaceIsChunkPlusNext) {
  const BeepCode code(10, 4, 1);
  EXPECT_EQ(code.chunk_len(), 10);
  EXPECT_EQ(code.next_token(), 10u);
  EXPECT_EQ(code.codebook().num_messages(), 11u);
}

TEST(BeepCode, LengthScalesLogarithmically) {
  const BeepCode small(7, 6, 1);
  const BeepCode large(1023, 6, 1);
  EXPECT_EQ(small.codeword_length(),
            6u * (CeilLog2(8) + 1));
  EXPECT_EQ(large.codeword_length(),
            6u * (CeilLog2(1024) + 1));
  // 128x the chunk size costs only ~2.7x the bits.
  EXPECT_LT(large.codeword_length(), 3 * small.codeword_length());
}

TEST(BeepCode, RoundTripsAllMessages) {
  const BeepCode code(31, 6, 2);
  for (std::uint64_t m = 0; m <= 31; ++m) {
    EXPECT_EQ(code.Decode(code.Encode(m)), m);
  }
}

TEST(BeepCode, DeterministicInSeed) {
  const BeepCode a(15, 5, 9);
  const BeepCode b(15, 5, 9);
  for (std::uint64_t m = 0; m <= 15; ++m) {
    EXPECT_EQ(a.Encode(m), b.Encode(m));
  }
}

TEST(BeepCode, ValidatesParameters) {
  EXPECT_THROW(BeepCode(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(BeepCode(4, 0, 1), std::invalid_argument);
}

class BeepCodeNoiseTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BeepCodeNoiseTest, DecodesThroughOneSidedNoise) {
  // Owner-finding sends codewords through the one-sided-up channel: 1 bits
  // arrive intact, 0 bits flip up with rate eps.  ML decoding must survive
  // at the default length factor.
  const auto [chunk_len, eps] = GetParam();
  const BeepCode code(chunk_len, 6, 3);
  Rng rng(1000 + chunk_len);
  int failures = 0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t msg = rng.UniformInt(chunk_len + 1);
    BitString word = code.Encode(msg);
    for (std::size_t i = 0; i < word.size(); ++i) {
      if (!word[i] && rng.Bernoulli(eps)) word.Set(i, true);
    }
    failures += code.Decode(word) != msg;
  }
  EXPECT_LE(failures, kTrials / 20)
      << "chunk=" << chunk_len << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BeepCodeNoiseTest,
    ::testing::Combine(::testing::Values(8, 64, 256),
                       ::testing::Values(0.05, 0.10)));

TEST(BeepCode, MinimumDistanceIsHealthy) {
  // Random codebooks at factor 6 should comfortably exceed L/5.
  const BeepCode code(32, 6, 4);
  EXPECT_GE(MinimumDistance(code.codebook()), code.codeword_length() / 5);
}

}  // namespace
}  // namespace noisybeeps
