// Larger-scale end-to-end runs (each a second or less): the regimes a
// downstream user actually deploys, kept in the default test suite as a
// canary for performance and robustness regressions.
#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "coding/hierarchical_sim.h"
#include "coding/rewind_sim.h"
#include "protocol/combinators.h"
#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "tasks/random_protocol.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(Stress, RewindAt128Parties) {
  Rng rng(1);
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  const InputSetInstance instance = SampleInputSet(128, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_FALSE(result.budget_exhausted());
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
  EXPECT_TRUE(InputSetAllCorrect(instance, result.outputs));
}

TEST(Stress, HierarchicalOverSixtyChunks) {
  Rng rng(2);
  const CorrelatedNoisyChannel channel(0.05);
  // 8 parties, chunk = 8, T = 512: 64 chunks, audits up to level 6.
  const auto base = std::shared_ptr<const Protocol>(
      MakeBitExchangeProtocol(SampleBitExchange(8, 8, rng)));
  const auto repeated = RepeatProtocol(base, 8);  // T = 512
  const HierarchicalSimulator sim;
  const SimulationResult result = sim.Simulate(*repeated, channel, rng);
  EXPECT_FALSE(result.budget_exhausted());
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*repeated)));
}

TEST(Stress, ScheduledPresetAt256Parties) {
  Rng rng(3);
  const CorrelatedNoisyChannel channel(0.05);
  const BitExchangeInstance instance = SampleBitExchange(256, 4, rng);
  const RewindSimulator sim(
      RewindSimOptions::Scheduled(BitExchangeSchedule(256, 4)));
  const auto protocol = MakeBitExchangeProtocol(instance);  // T = 1024
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_FALSE(result.budget_exhausted());
  EXPECT_TRUE(BitExchangeAllCorrect(instance, result.outputs));
  // Constant-overhead regime even at this scale.
  EXPECT_LT(static_cast<double>(result.noisy_rounds_used) /
                protocol->length(),
            8.0);
}

TEST(Stress, DenseAdaptiveRandomProtocol) {
  Rng rng(4);
  const CorrelatedNoisyChannel channel(0.05);
  const RandomProtocolSpec spec =
      SampleRandomProtocol(24, 96, 0.5, /*adaptive=*/true, rng);
  const auto protocol = MakeRandomProtocol(spec);
  const RewindSimulator sim;
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_FALSE(result.budget_exhausted());
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
}

}  // namespace
}  // namespace noisybeeps
