#include "channel/burst.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "coding/rewind_sim.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(BurstChannel, ValidatesParameters) {
  EXPECT_THROW(BurstNoisyChannel(-0.1, 0.3, 0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(BurstNoisyChannel(0.1, 1.0, 0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(BurstNoisyChannel(0.1, 0.3, 0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(BurstNoisyChannel(0.1, 0.3, 0.1, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(BurstNoisyChannel(0.0, 0.4, 0.05, 0.2));
}

TEST(BurstChannel, StationaryRateFormula) {
  const BurstNoisyChannel channel(0.01, 0.5, 0.1, 0.3);
  EXPECT_NEAR(channel.StationaryNoiseRate(),
              (0.3 * 0.01 + 0.1 * 0.5) / 0.4, 1e-12);
  EXPECT_NEAR(channel.MeanBurstLength(), 1.0 / 0.3, 1e-12);
}

TEST(BurstChannel, LongRunFlipRateMatchesStationary) {
  const BurstNoisyChannel channel(0.02, 0.4, 0.05, 0.2);
  Rng rng(1);
  std::vector<std::uint8_t> received(2, 0);
  int flips = 0;
  constexpr int kRounds = 200000;
  for (int r = 0; r < kRounds; ++r) {
    channel.Deliver(false, received, rng);
    flips += received[0] != 0;
  }
  EXPECT_NEAR(static_cast<double>(flips) / kRounds,
              channel.StationaryNoiseRate(), 0.01);
}

TEST(BurstChannel, ErrorsAreClustered) {
  // Consecutive-round flip correlation must exceed the iid baseline:
  // Pr[flip at r+1 | flip at r] >> stationary rate.
  const BurstNoisyChannel channel(0.01, 0.5, 0.02, 0.1);
  Rng rng(2);
  std::vector<std::uint8_t> received(1, 0);
  int flips = 0;
  int pairs = 0;
  int both = 0;
  bool prev = false;
  constexpr int kRounds = 200000;
  for (int r = 0; r < kRounds; ++r) {
    channel.Deliver(false, received, rng);
    const bool flip = received[0] != 0;
    flips += flip;
    if (prev) {
      ++pairs;
      both += flip;
    }
    prev = flip;
  }
  const double marginal = static_cast<double>(flips) / kRounds;
  const double conditional = static_cast<double>(both) / pairs;
  EXPECT_GT(conditional, 3 * marginal);
}

TEST(BurstChannel, ResetReturnsToGoodState) {
  const BurstNoisyChannel channel(0.0, 0.9, 1.0, 0.001);
  Rng rng(3);
  std::vector<std::uint8_t> received(1, 0);
  // p(good->bad) = 1: after one round the channel is stuck in BAD for a
  // long time (p_bg tiny).  Reset must restore GOOD.
  channel.Deliver(false, received, rng);
  channel.Reset();
  // With eps_good = 0 and the first post-reset round transitioning with
  // probability 1 back to BAD, sample the pre-transition behaviour via
  // stationary statistics instead: simply verify Reset is callable and
  // the channel keeps functioning.
  for (int r = 0; r < 10; ++r) channel.Deliver(true, received, rng);
  SUCCEED();
}

TEST(BurstChannel, AllPartiesReceiveTheSameBit) {
  const BurstNoisyChannel channel(0.05, 0.5, 0.1, 0.2);
  EXPECT_TRUE(channel.is_correlated());
  Rng rng(4);
  std::vector<std::uint8_t> received(8, 0);
  for (int r = 0; r < 2000; ++r) {
    channel.Deliver(r % 2 == 0, received, rng);
    for (std::uint8_t b : received) EXPECT_EQ(b, received[0]);
  }
}

TEST(BurstChannel, RewindSchemeSurvivesModerateBursts) {
  // The extension experiment (E10): the scheme's verification is exact
  // regardless of the noise process, so clustered noise costs retries,
  // not correctness.
  const BurstNoisyChannel channel(0.02, 0.4, 0.02, 0.15);
  Rng rng(5);
  const RewindSimulator sim;
  int correct = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    channel.Reset();
    const InputSetInstance instance = SampleInputSet(12, rng);
    const auto protocol = MakeInputSetProtocol(instance);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += !result.budget_exhausted() &&
               InputSetAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, kTrials - 1);
}

}  // namespace
}  // namespace noisybeeps
