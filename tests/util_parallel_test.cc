#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>

namespace noisybeeps {
namespace {

TEST(ParallelTrials, RunsEveryTrialExactlyOnce) {
  Rng rng(1);
  // A plain lambda: no std::function type erasure on the sweep path.
  const std::vector<int> results =
      ParallelTrials(100, rng, [](int t, Rng&) { return t; }, 4);
  ASSERT_EQ(results.size(), 100u);
  for (int t = 0; t < 100; ++t) EXPECT_EQ(results[t], t);
}

TEST(ParallelTrials, StdFunctionBodiesStillWork) {
  Rng rng(1);
  const std::function<int(int, Rng&)> body = [](int t, Rng&) { return t; };
  const std::vector<int> results = ParallelTrials(10, rng, body, 2);
  ASSERT_EQ(results.size(), 10u);
  for (int t = 0; t < 10; ++t) EXPECT_EQ(results[t], t);
}

TEST(ParallelTrials, ResultNeedsNoDefaultConstructor) {
  // Results are constructed in place; move-only, non-default-constructible
  // result types are fine.
  struct Heavy {
    explicit Heavy(int v) : value(std::make_unique<int>(v)) {}
    Heavy(Heavy&&) = default;
    std::unique_ptr<int> value;
  };
  Rng rng(5);
  const std::vector<Heavy> results = ParallelTrials(
      32, rng, [](int t, Rng&) { return Heavy(t * 3); }, 4);
  ASSERT_EQ(results.size(), 32u);
  for (int t = 0; t < 32; ++t) EXPECT_EQ(*results[t].value, t * 3);
}

TEST(ParallelTrials, ResultsIndependentOfWorkerCount) {
  const auto body = [](int t, Rng& r) {
    // Consume a trial-dependent amount of randomness to catch any
    // cross-trial stream sharing.
    std::uint64_t acc = 0;
    for (int i = 0; i <= t % 7; ++i) acc ^= r.NextU64();
    return acc;
  };
  std::vector<std::vector<std::uint64_t>> by_workers;
  for (int workers : {1, 2, 5, 16}) {
    Rng rng(99);
    by_workers.push_back(ParallelTrials(64, rng, body, workers));
  }
  for (std::size_t i = 1; i < by_workers.size(); ++i) {
    EXPECT_EQ(by_workers[i], by_workers[0]) << i;
  }
}

TEST(ParallelTrials, ParentRngAdvancesDeterministically) {
  Rng a(7);
  Rng b(7);
  const auto body = [](int, Rng&) { return 0; };
  (void)ParallelTrials(10, a, body, 3);
  for (int t = 0; t < 10; ++t) (void)b.Split();
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(ParallelTrials, ZeroTrials) {
  Rng rng(3);
  const auto body = [](int, Rng&) { return 1; };
  EXPECT_TRUE(ParallelTrials(0, rng, body).empty());
  EXPECT_THROW((void)ParallelTrials(-1, rng, body), std::invalid_argument);
  EXPECT_THROW((void)ParallelTrials(1, rng, body, -2), std::invalid_argument);
}

TEST(ParallelForEach, RunsEveryIndexInOrder) {
  const std::vector<int> results =
      ParallelForEach(50, [](int i) { return i * 2; }, 4);
  ASSERT_EQ(results.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(results[i], i * 2);
}

TEST(ParallelForEach, RejectsBadArguments) {
  const auto body = [](int i) { return i; };
  EXPECT_TRUE(ParallelForEach(0, body).empty());
  EXPECT_THROW((void)ParallelForEach(-1, body), std::invalid_argument);
  EXPECT_THROW((void)ParallelForEach(1, body, -1), std::invalid_argument);
}

TEST(ParallelForEach, BodyExceptionPropagatesAtEveryWorkerCount) {
  // A throwing body must reach the CALLER as the thrown exception at every
  // worker count.  Before the exception_ptr ferry this aborted the whole
  // process via std::terminate whenever workers > 1 (an exception escaping
  // a thread's start function), so nothing downstream could catch it.
  for (int workers : {1, 2, 4, 8}) {
    try {
      (void)ParallelForEach(
          64,
          [](int i) -> int {
            if (i == 13) throw std::runtime_error("broken body");
            return i;
          },
          workers);
      FAIL() << "body exception swallowed at workers=" << workers;
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "broken body") << workers;
    }
  }
}

TEST(ParallelForEach, ExceptionStopsWorkersFromDrainingTheSweep) {
  // Once one index throws, workers stop pulling new indices: a persistent
  // failure ends the run promptly instead of burning the whole sweep.
  constexpr int kCount = 100000;
  std::atomic<int> ran{0};
  try {
    (void)ParallelForEach(
        kCount,
        [&](int) -> int {
          ran.fetch_add(1, std::memory_order_relaxed);
          throw std::runtime_error("always broken");
        },
        4);
    FAIL() << "body exception swallowed";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(ran.load(), kCount);
}

TEST(SplitTrialRngs, MatchesParallelTrialsStreams) {
  // ParallelTrials == SplitTrialRngs + ParallelForEach by construction;
  // the resilience layer depends on this decomposition staying exact.
  Rng a(21);
  Rng b(21);
  const auto body = [](int t, Rng& r) { return r.NextU64() + t; };
  const std::vector<std::uint64_t> via_trials = ParallelTrials(16, a, body, 3);
  std::vector<Rng> rngs = SplitTrialRngs(16, b);
  const std::vector<std::uint64_t> via_for_each = ParallelForEach(
      16, [&](int t) { return body(t, rngs[t]); }, 3);
  EXPECT_EQ(via_trials, via_for_each);
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(ParallelTrials, AggregatesLikeSerialLoop) {
  // A small Monte Carlo: estimate the mean of UniformDouble.
  Rng rng(11);
  const auto body = [](int, Rng& r) {
    double sum = 0;
    for (int i = 0; i < 100; ++i) sum += r.UniformDouble();
    return sum / 100;
  };
  const std::vector<double> results = ParallelTrials(200, rng, body, 8);
  const double mean =
      std::accumulate(results.begin(), results.end(), 0.0) / results.size();
  EXPECT_NEAR(mean, 0.5, 0.02);
}

}  // namespace
}  // namespace noisybeeps
