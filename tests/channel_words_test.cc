// The word-parallel delivery path (DeliverWords / RoundWords).
//
// Three contracts are held to account here:
//   1. stream-compat is the scalar path: for EVERY channel, DeliverWords
//      in kStreamCompat mode produces bit-identical results AND leaves
//      the rng in the identical state as packing the scalar Deliver --
//      same seed, same draws, same bits.
//   2. shared-draw channels cannot tell the modes apart: one draw per
//      round either way, so kFast == kStreamCompat == scalar for all of
//      them by construction.
//   3. the fast independent path batches: epsilon = 0 consumes no
//      randomness, the per-lane flip distribution matches the scalar
//      sampler statistically, tail bits of the last word stay zero at
//      every word-straddling party count, and the stream-compat draw
//      count is pinned to exactly one NextU64 per listener.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "channel/adversary.h"
#include "channel/burst.h"
#include "channel/channel.h"
#include "channel/collision.h"
#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "channel/shared_randomness.h"
#include "channel/trace.h"
#include "fault/injection.h"
#include "protocol/round_engine.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

constexpr std::uint64_t kSeed = 20260807;

// Party counts probing word boundaries: below, at, and straddling one and
// several words.
const std::int64_t kPartyCounts[] = {1, 5, 63, 64, 65, 127, 128, 190};

std::vector<std::unique_ptr<Channel>> AllChannels() {
  std::vector<std::unique_ptr<Channel>> channels;
  channels.push_back(std::make_unique<NoiselessChannel>());
  channels.push_back(std::make_unique<CorrelatedNoisyChannel>(0.1));
  channels.push_back(std::make_unique<OneSidedUpChannel>(1.0 / 3.0));
  channels.push_back(std::make_unique<OneSidedDownChannel>(0.25));
  channels.push_back(std::make_unique<CollisionAsSilenceChannel>(0.15));
  channels.push_back(std::make_unique<CollisionAsSilenceChannel>(0.0));
  channels.push_back(std::make_unique<BurstNoisyChannel>(0.01, 0.4, 0.2, 0.5));
  channels.push_back(std::make_unique<AdversarialCorrectionChannel>(
      0.3, CorrectionPolicy::kCorrectDrops));
  channels.push_back(
      std::make_unique<SharedRandomnessOneSidedAdapter>(1.0 / 3.0, 0.25));
  channels.push_back(std::make_unique<IndependentNoisyChannel>(0.2));
  channels.push_back(std::make_unique<IndependentNoisyChannel>(0.004));
  channels.push_back(std::make_unique<IndependentNoisyChannel>(0.0));
  return channels;
}

std::int64_t BeepersAt(int r, std::int64_t n) {
  return (r % 3) % (n + 1);
}

// Runs `rounds` scalar rounds on `scalar_channel` and `rounds` word
// rounds on `word_channel` from the same seed and asserts bit-identity.
// The two must be freshly built twins (AllChannels() is deterministic):
// interleaving both paths on ONE object would advance stateful channels
// (burst's Markov chain) twice per round and compare different rounds.
void ExpectWordPathMatchesScalar(const Channel& scalar_channel,
                                 const Channel& word_channel, std::int64_t n,
                                 WordMode mode, int rounds = 32) {
  Rng scalar_rng(kSeed);
  Rng word_rng(kSeed);
  std::vector<std::uint8_t> received(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> packed(WordsForParties(n), 0);
  std::vector<std::uint64_t> received_words(WordsForParties(n), 0);
  for (int r = 0; r < rounds; ++r) {
    const std::int64_t beepers = BeepersAt(r, n);
    scalar_channel.Deliver(beepers, received, scalar_rng);
    word_channel.DeliverWords(beepers, received_words, n, mode, word_rng);
    PackBits(received, packed);
    ASSERT_EQ(packed, received_words)
        << scalar_channel.name() << " n=" << n << " round=" << r;
    // Tail bits of the last word must come back zero.
    ASSERT_EQ(received_words.back() & ~TailWordMask(n), 0u)
        << scalar_channel.name() << " n=" << n << " round=" << r;
  }
  if (mode == WordMode::kStreamCompat) {
    // Draw-for-draw identity: the streams end in the same place.
    EXPECT_EQ(scalar_rng.SaveState(), word_rng.SaveState())
        << scalar_channel.name() << " n=" << n;
  }
}

TEST(ChannelWords, StreamCompatIsBitAndDrawIdenticalToScalar) {
  const auto scalar_channels = AllChannels();
  for (std::size_t c = 0; c < scalar_channels.size(); ++c) {
    for (const std::int64_t n : kPartyCounts) {
      // Fresh twins per party count: stateful channels restart clean.
      ExpectWordPathMatchesScalar(*AllChannels()[c], *AllChannels()[c], n,
                                  WordMode::kStreamCompat);
    }
  }
}

TEST(ChannelWords, SharedDrawChannelsCannotTellModesApart) {
  const auto probe_channels = AllChannels();
  for (std::size_t c = 0; c < probe_channels.size(); ++c) {
    if (!probe_channels[c]->is_correlated()) continue;
    for (const std::int64_t n : kPartyCounts) {
      // For shared-draw channels fast == compat == scalar, including the
      // end rng state (one draw per round either way).
      ExpectWordPathMatchesScalar(*AllChannels()[c], *AllChannels()[c], n,
                                  WordMode::kFast);
      const auto fast_channel = std::move(AllChannels()[c]);
      const auto compat_channel = std::move(AllChannels()[c]);
      Rng fast_rng(kSeed);
      Rng compat_rng(kSeed);
      std::vector<std::uint64_t> fast_words(WordsForParties(n), 0);
      std::vector<std::uint64_t> compat_words(WordsForParties(n), 0);
      for (int r = 0; r < 32; ++r) {
        const std::int64_t beepers = BeepersAt(r, n);
        fast_channel->DeliverWords(beepers, fast_words, n, WordMode::kFast,
                                   fast_rng);
        compat_channel->DeliverWords(beepers, compat_words, n,
                                     WordMode::kStreamCompat, compat_rng);
        ASSERT_EQ(fast_words, compat_words)
            << fast_channel->name() << " n=" << n;
      }
      EXPECT_EQ(fast_rng.SaveState(), compat_rng.SaveState())
          << fast_channel->name() << " n=" << n;
    }
  }
}

TEST(ChannelWords, StreamCompatIndependentDrawCountIsOnePerListener) {
  const IndependentNoisyChannel channel(0.2);
  for (const std::int64_t n : kPartyCounts) {
    Rng rng(kSeed);
    Rng counter(kSeed);
    std::vector<std::uint64_t> words(WordsForParties(n), 0);
    channel.DeliverWords(1, words, n, WordMode::kStreamCompat, rng);
    for (std::int64_t i = 0; i < n; ++i) (void)counter.NextU64();
    EXPECT_EQ(rng.SaveState(), counter.SaveState()) << "n=" << n;
  }
}

TEST(ChannelWords, FastIndependentZeroEpsilonConsumesNoRandomness) {
  const IndependentNoisyChannel channel(0.0);
  const std::int64_t n = 190;
  Rng rng(kSeed);
  const auto before = rng.SaveState();
  std::vector<std::uint64_t> words(WordsForParties(n), ~std::uint64_t{0});
  channel.DeliverWords(0, words, n, WordMode::kFast, rng);
  EXPECT_EQ(rng.SaveState(), before);
  for (const std::uint64_t w : words) EXPECT_EQ(w, 0u);
  channel.DeliverWords(n, words, n, WordMode::kFast, rng);
  EXPECT_EQ(rng.SaveState(), before);
  EXPECT_EQ(words.back() & ~TailWordMask(n), 0u);
  std::int64_t ones = 0;
  for (const std::uint64_t w : words) ones += std::popcount(w);
  EXPECT_EQ(ones, n);
}

// The fast path must sample each lane from the identical fixed-point
// Bernoulli(eps) marginal the scalar path uses, in both regimes: the
// geometric skip walk (64 * eps < 1) and the bit-sliced word draws.
TEST(ChannelWords, FastIndependentFlipRateMatchesEpsilon) {
  for (const double eps : {0.004, 0.2}) {
    const IndependentNoisyChannel channel(eps);
    const std::int64_t n = 190;
    Rng rng(kSeed);
    std::vector<std::uint64_t> words(WordsForParties(n), 0);
    std::int64_t flips = 0;
    const int rounds = eps < 0.01 ? 40000 : 4000;
    for (int r = 0; r < rounds; ++r) {
      channel.DeliverWords(0, words, n, WordMode::kFast, rng);
      ASSERT_EQ(words.back() & ~TailWordMask(n), 0u);
      for (const std::uint64_t w : words) flips += std::popcount(w);
    }
    const double total = static_cast<double>(rounds) * static_cast<double>(n);
    const double rate = static_cast<double>(flips) / total;
    // ~5 sigma of the binomial around eps.
    const double sigma = std::sqrt(eps * (1.0 - eps) / total);
    EXPECT_NEAR(rate, eps, 5.0 * sigma) << "eps=" << eps;
  }
}

// A fast-mode skip walk crossing word boundaries must flip each selected
// position exactly once: flipping the all-ones input back yields the
// complement of the all-zeros run under the same seed.
TEST(ChannelWords, FastIndependentSkipWalkStraddlesWordsWithoutDoubleDraw) {
  const IndependentNoisyChannel channel(0.004);
  const std::int64_t n = 190;
  Rng rng_a(kSeed);
  Rng rng_b(kSeed);
  std::vector<std::uint64_t> silent(WordsForParties(n), 0);
  std::vector<std::uint64_t> beeped(WordsForParties(n), 0);
  for (int r = 0; r < 2000; ++r) {
    channel.DeliverWords(0, silent, n, WordMode::kFast, rng_a);
    channel.DeliverWords(1, beeped, n, WordMode::kFast, rng_b);
    // Same seed, same flips: received = or_bit ^ flips, so the two runs
    // are exact complements on the valid lanes.
    for (std::size_t w = 0; w < silent.size(); ++w) {
      const std::uint64_t mask =
          w + 1 == silent.size() ? TailWordMask(n) : ~std::uint64_t{0};
      ASSERT_EQ(silent[w] & mask, ~beeped[w] & mask) << "round " << r;
    }
  }
  EXPECT_EQ(rng_a.SaveState(), rng_b.SaveState());
}

TEST(ChannelWords, BaseClassFallbackPacksScalarDeliver) {
  // RecordingChannel exercises DeliverWords forwarding; a channel without
  // an override exercises the base-class pack fallback.  Both must agree
  // with the scalar path bit for bit.
  const CorrelatedNoisyChannel scalar_inner(0.1);
  const CorrelatedNoisyChannel word_inner(0.1);
  for (const std::int64_t n : kPartyCounts) {
    // Fresh recorders per n: the trace is per-run state.
    const RecordingChannel scalar_recording(scalar_inner);
    const RecordingChannel word_recording(word_inner);
    ExpectWordPathMatchesScalar(scalar_recording, word_recording, n,
                                WordMode::kStreamCompat, 8);
  }
}

TEST(ChannelWords, RecordingAndReplayRoundTripOnWords) {
  const IndependentNoisyChannel inner(0.2);
  const RecordingChannel recording(inner);
  const std::int64_t n = 70;
  Rng rng(kSeed);
  std::vector<std::uint64_t> words(WordsForParties(n), 0);
  std::vector<std::vector<std::uint64_t>> rounds;
  for (int r = 0; r < 16; ++r) {
    recording.DeliverWords(BeepersAt(r, n), words, n,
                           WordMode::kStreamCompat, rng);
    rounds.push_back(words);
  }
  const ReplayChannel replay(recording.trace(), inner.is_correlated());
  Rng unused(1);
  for (int r = 0; r < 16; ++r) {
    replay.DeliverWords(BeepersAt(r, n), words, n, WordMode::kFast, unused);
    EXPECT_EQ(words, rounds[static_cast<std::size_t>(r)]) << "round " << r;
  }
}

TEST(ChannelWords, RoundWordsSharesAccountingWithRound) {
  const CorrelatedNoisyChannel channel(0.1);
  const std::int64_t n = 130;
  Rng rng(kSeed);
  RoundEngine engine(channel, rng, n);
  std::vector<std::uint64_t> beeps(WordsForParties(n), 0);
  engine.SetPhase("words");
  (void)engine.RoundWords(beeps);
  beeps[0] = 1;
  (void)engine.RoundWords(beeps);
  engine.SetPhase("scalar");
  const std::vector<std::uint8_t> scalar_beeps(static_cast<std::size_t>(n),
                                               0);
  (void)engine.Round(scalar_beeps);
  EXPECT_EQ(engine.rounds_used(), 3);
  EXPECT_EQ(engine.phase_rounds().at("words"), 2);
  EXPECT_EQ(engine.phase_rounds().at("scalar"), 1);
}

TEST(ChannelWords, RoundWordsMatchesRoundInStreamCompat) {
  const IndependentNoisyChannel channel(0.2);
  const std::int64_t n = 190;
  Rng scalar_rng(kSeed);
  Rng word_rng(kSeed);
  RoundEngine scalar_engine(channel, scalar_rng, n);
  RoundEngine word_engine(channel, word_rng, n);
  std::vector<std::uint8_t> beeps(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> beep_words(WordsForParties(n), 0);
  std::vector<std::uint64_t> packed(WordsForParties(n), 0);
  for (int r = 0; r < 16; ++r) {
    for (std::int64_t i = 0; i < n; ++i) {
      beeps[static_cast<std::size_t>(i)] = (i + r) % 97 == 0 ? 1 : 0;
    }
    PackBits(beeps, beep_words);
    const auto scalar_received = scalar_engine.Round(beeps);
    const auto word_received = word_engine.RoundWords(beep_words);
    PackBits(scalar_received, packed);
    ASSERT_EQ(std::vector<std::uint64_t>(word_received.begin(),
                                         word_received.end()),
              packed)
        << "round " << r;
  }
  EXPECT_EQ(scalar_rng.SaveState(), word_rng.SaveState());
}

TEST(ChannelWords, RoundWordsRejectsDirtyTailBits) {
  const CorrelatedNoisyChannel channel(0.1);
  const std::int64_t n = 70;
  Rng rng(kSeed);
  RoundEngine engine(channel, rng, n);
  std::vector<std::uint64_t> beeps(WordsForParties(n), 0);
  beeps.back() = ~std::uint64_t{0};  // bits 6..63 are past num_parties
  EXPECT_THROW((void)engine.RoundWords(beeps), std::invalid_argument);
}

TEST(ChannelWords, FaultyRoundEngineWordPathMatchesScalarPath) {
  const IndependentNoisyChannel channel(0.2);
  const std::int64_t n = 100;
  FaultPlan plan(99);
  plan.CrashStop(3, 4)
      .StuckBeeper(64, 0, 7)   // second word: the straddle matters
      .Babbler(70, 2, 11, 0.7)
      .DeafReceiver(99, 0, 5);
  Rng scalar_rng(kSeed);
  Rng word_rng(kSeed);
  FaultyRoundEngine scalar_engine(channel, scalar_rng, n, plan);
  FaultyRoundEngine word_engine(channel, word_rng, n, plan);
  std::vector<std::uint8_t> beeps(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> beep_words(WordsForParties(n), 0);
  std::vector<std::uint64_t> packed(WordsForParties(n), 0);
  for (int r = 0; r < 16; ++r) {
    for (std::int64_t i = 0; i < n; ++i) {
      beeps[static_cast<std::size_t>(i)] = (i * 7 + r) % 31 == 0 ? 1 : 0;
    }
    PackBits(beeps, beep_words);
    const auto scalar_received = scalar_engine.Round(beeps);
    const auto word_received = word_engine.RoundWords(beep_words);
    PackBits(scalar_received, packed);
    ASSERT_EQ(std::vector<std::uint64_t>(word_received.begin(),
                                         word_received.end()),
              packed)
        << "round " << r;
  }
  EXPECT_EQ(scalar_rng.SaveState(), word_rng.SaveState());
}

TEST(ChannelWords, MegaRoundRunsAtMillionsOfParties) {
  // The point of the word path: a round over 2^20 parties is a routine
  // operation.  Fast mode, dense regime; spot-check the flip rate.
  const IndependentNoisyChannel channel(0.2);
  const std::int64_t n = std::int64_t{1} << 20;
  Rng rng(kSeed);
  RoundEngine engine(channel, rng, n);
  engine.SetWordMode(WordMode::kFast);
  std::vector<std::uint64_t> beeps(WordsForParties(n), 0);
  const auto received = engine.RoundWords(beeps);
  std::int64_t ones = 0;
  for (const std::uint64_t w : received) ones += std::popcount(w);
  const double rate = static_cast<double>(ones) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.2, 0.01);
  EXPECT_EQ(engine.rounds_used(), 1);
}

TEST(ChannelWords, PackUnpackRoundTrip) {
  const std::int64_t n = 190;
  Rng rng(kSeed);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(n), 0);
  for (auto& b : bytes) b = rng.Bit() ? 1 : 0;
  std::vector<std::uint64_t> words(WordsForParties(n), ~std::uint64_t{0});
  PackBits(bytes, words);
  EXPECT_EQ(words.back() & ~TailWordMask(n), 0u);
  std::vector<std::uint8_t> back(static_cast<std::size_t>(n), 0);
  UnpackBits(words, back);
  EXPECT_EQ(back, bytes);
}

TEST(ChannelWords, DeliverWordsValidatesItsPreconditions) {
  const CorrelatedNoisyChannel channel(0.1);
  Rng rng(kSeed);
  std::vector<std::uint64_t> words(2, 0);
  EXPECT_THROW(channel.DeliverWords(0, words, 0, WordMode::kFast, rng),
               std::invalid_argument);
  EXPECT_THROW(channel.DeliverWords(5, words, 4, WordMode::kFast, rng),
               std::invalid_argument);
  EXPECT_THROW(channel.DeliverWords(-1, words, 70, WordMode::kFast, rng),
               std::invalid_argument);
  EXPECT_THROW(channel.DeliverWords(0, words, 300, WordMode::kFast, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
