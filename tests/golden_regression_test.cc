// Golden regression pins: exact seeded outputs of the stochastic
// components.  EXPERIMENTS.md promises bit-reproducible numbers; these
// tests fail loudly if anyone changes an RNG, a sampling routine, or a
// protocol definition in a way that would silently invalidate every
// documented measurement.  If a change here is INTENTIONAL, update the
// pinned values and re-run the benchmarks to refresh EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <sstream>

#include "channel/correlated.h"
#include "channel/trace.h"
#include "coding/rewind_sim.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

TEST(Golden, RngStreamIsPinned) {
  Rng rng(42);
  EXPECT_EQ(rng.NextU64(), 0x15780b2e0c2ec716ULL);
  EXPECT_EQ(rng.NextU64(), 0x6104d9866d113a7eULL);
  EXPECT_EQ(rng.NextU64(), 0xae17533239e499a1ULL);
}

TEST(Golden, InputSetSampleIsPinned) {
  Rng rng(7);
  const InputSetInstance instance = SampleInputSet(8, rng);
  EXPECT_EQ(instance.inputs,
            (std::vector<int>{11, 4, 13, 15, 15, 13, 0, 1}));
}

TEST(Golden, ReferenceTranscriptIsPinned) {
  Rng rng(7);
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  EXPECT_EQ(ReferenceTranscript(*protocol).ToString(), "1100100000010101");
}

TEST(Golden, NoisyExecutionIsPinned) {
  Rng rng(7);
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const CorrelatedNoisyChannel channel(0.2);
  const ExecutionResult result = Execute(*protocol, channel, rng);
  EXPECT_EQ(result.shared().ToString(), "1000100000101101");
}

TEST(Golden, RewindSimulationCostIsPinned) {
  Rng rng(7);
  const InputSetInstance instance = SampleInputSet(8, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
  EXPECT_EQ(result.noisy_rounds_used, 1160);
}

TEST(Golden, TraceCsvRoundTrips) {
  Rng rng(9);
  const InputSetInstance instance = SampleInputSet(4, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const CorrelatedNoisyChannel inner(0.3);
  const RecordingChannel recorder(inner);
  (void)Execute(*protocol, recorder, rng);

  std::stringstream buffer;
  WriteTraceCsv(recorder.trace(), buffer);
  const Trace parsed = ReadTraceCsv(buffer);
  ASSERT_EQ(parsed.size(), recorder.trace().size());
  for (std::size_t r = 0; r < parsed.size(); ++r) {
    EXPECT_EQ(parsed[r].or_bit, recorder.trace()[r].or_bit);
    EXPECT_EQ(parsed[r].delivered, recorder.trace()[r].delivered);
  }
}

TEST(Golden, TraceCsvRejectsMalformedInput) {
  std::istringstream missing_header("0,1,11\n");
  EXPECT_THROW((void)ReadTraceCsv(missing_header), std::invalid_argument);
  std::istringstream bad_bit("round,or_bit,delivered\n0,1,1x\n");
  EXPECT_THROW((void)ReadTraceCsv(bad_bit), std::invalid_argument);
  std::istringstream out_of_order("round,or_bit,delivered\n1,1,11\n");
  EXPECT_THROW((void)ReadTraceCsv(out_of_order), std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
