#include "analysis/neighbors.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace noisybeeps {
namespace {

// Brute-force |N^i(x)|: try every alternative input for party i and
// compare the sets L(x) and L(x').
std::vector<std::size_t> BruteForceCounts(const InputSetInstance& instance) {
  const int n = instance.num_parties();
  const int universe = instance.universe_size();
  const PartyOutput base = InputSetExpectedOutput(instance);
  std::vector<std::size_t> counts(n, 0);
  for (int i = 0; i < n; ++i) {
    for (int y = 0; y < universe; ++y) {
      if (y == instance.inputs[i]) continue;
      InputSetInstance modified = instance;
      modified.inputs[i] = y;
      if (InputSetExpectedOutput(modified) != base) ++counts[i];
    }
  }
  return counts;
}

TEST(Neighbors, MatchesBruteForceOnRandomInstances) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.UniformInt(8));
    const InputSetInstance instance = SampleInputSet(n, rng);
    EXPECT_EQ(NeighborCountsPerParty(instance), BruteForceCounts(instance))
        << "trial " << trial;
  }
}

TEST(Neighbors, UniqueInputPartyHasMaximalCount) {
  InputSetInstance instance;
  instance.inputs = {0, 1, 2, 3};  // all unique, universe 8
  const auto counts = NeighborCountsPerParty(instance);
  for (std::size_t c : counts) EXPECT_EQ(c, 7u);  // any change alters L
  EXPECT_EQ(TotalNeighborCount(instance), 28u);
}

TEST(Neighbors, DuplicatedInputPartyCountsOnlyAdditions) {
  InputSetInstance instance;
  instance.inputs = {5, 5};  // universe 4? no -- n=2, universe 4; 5 invalid
  instance.inputs = {3, 3};  // n=2, universe 4, |L| = 1
  const auto counts = NeighborCountsPerParty(instance);
  // Changing one copy of 3 to y: L changes iff y not in {3} -> 3 options.
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 3u);
}

TEST(Neighbors, TotalIsQuadraticForTypicalInputs) {
  // Section 2.3: |N(x)| = Theta(n^2) for a constant fraction of uniform x.
  Rng rng(2);
  const int n = 32;
  int quadratic = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    // Threshold n^2 / 4 comfortably below the typical ~ (2n-1) * (unique
    // fraction) * n.
    if (TotalNeighborCount(instance) >=
        static_cast<std::size_t>(n) * n / 4) {
      ++quadratic;
    }
  }
  EXPECT_GE(quadratic, kTrials * 9 / 10);
}

}  // namespace
}  // namespace noisybeeps
