// Boundary conditions across the stack: single parties, unit lengths,
// unit chunks, empty transcripts -- the degenerate shapes that production
// users hit first and asymptotic reasoning ignores.
#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "coding/hierarchical_sim.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "tasks/or_task.h"
#include "tasks/random_protocol.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

// A do-nothing protocol of length zero.
class SilentParty final : public Party {
 public:
  [[nodiscard]] bool ChooseBeep(const BitString&) const override {
    return false;
  }
  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    return PartyOutput{pi.size()};
  }
};

std::unique_ptr<Protocol> ZeroLengthProtocol(int n) {
  std::vector<std::unique_ptr<Party>> parties;
  for (int i = 0; i < n; ++i) parties.push_back(std::make_unique<SilentParty>());
  return std::make_unique<BasicProtocol>(std::move(parties), 0);
}

TEST(EdgeCases, ZeroLengthProtocolExecutes) {
  Rng rng(1);
  const NoiselessChannel channel;
  const auto protocol = ZeroLengthProtocol(3);
  const ExecutionResult result = Execute(*protocol, channel, rng);
  EXPECT_TRUE(result.shared().empty());
  for (const PartyOutput& out : result.outputs) {
    EXPECT_EQ(out, PartyOutput{0});
  }
}

TEST(EdgeCases, SimulatorsHandleZeroLengthProtocols) {
  Rng rng(2);
  const CorrelatedNoisyChannel channel(0.1);
  const auto protocol = ZeroLengthProtocol(4);
  const RepetitionSimulator rep;
  const RewindSimulator rewind;
  const HierarchicalSimulator hier;
  for (const Simulator* sim :
       std::initializer_list<const Simulator*>{&rep, &rewind, &hier}) {
    const SimulationResult result = sim->Simulate(*protocol, channel, rng);
    EXPECT_FALSE(result.budget_exhausted()) << sim->name();
    EXPECT_EQ(result.noisy_rounds_used, 0) << sim->name();
    for (const BitString& t : result.transcripts) EXPECT_TRUE(t.empty());
  }
}

TEST(EdgeCases, SinglePartyProtocols) {
  Rng rng(3);
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  // n = 1 InputSet: universe of size 2, one beeping round.
  const InputSetInstance instance{{1}};
  const auto protocol = MakeInputSetProtocol(instance);
  int correct = 0;
  for (int t = 0; t < 10; ++t) {
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += InputSetAllCorrect(instance, result.outputs);
  }
  EXPECT_GE(correct, 9);
}

TEST(EdgeCases, OneRoundProtocolThroughEverySimulator) {
  Rng rng(4);
  const CorrelatedNoisyChannel channel(0.05);
  const std::vector<std::uint8_t> bits{0, 1, 0};
  for (int trial = 0; trial < 5; ++trial) {
    const auto protocol = MakeOrProtocol(bits);
    const RepetitionSimulator rep;
    const RewindSimulator rewind;
    const HierarchicalSimulator hier;
    for (const Simulator* sim :
         std::initializer_list<const Simulator*>{&rep, &rewind, &hier}) {
      const SimulationResult result = sim->Simulate(*protocol, channel, rng);
      for (const PartyOutput& out : result.outputs) {
        EXPECT_EQ(out, PartyOutput{1}) << sim->name();
      }
    }
  }
}

TEST(EdgeCases, UnitChunkRewind) {
  Rng rng(5);
  const CorrelatedNoisyChannel channel(0.05);
  RewindSimOptions options;
  options.chunk_len = 1;  // one protocol round per chunk
  const RewindSimulator sim(options);
  const InputSetInstance instance{{0, 3, 5}};
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
}

TEST(EdgeCases, ChunkLargerThanProtocol) {
  Rng rng(6);
  const CorrelatedNoisyChannel channel(0.05);
  RewindSimOptions options;
  options.chunk_len = 1000;  // clamped to T internally
  const RewindSimulator sim(options);
  const InputSetInstance instance{{1, 2}};
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol)));
}

TEST(EdgeCases, AllOnesAndAllZerosTranscripts) {
  Rng rng(7);
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  // density 1.0: every party beeps every round (all-ones transcript,
  // maximal owner load); density 0.0: nobody ever beeps (all-zero
  // transcript, pure 0->1 defence).
  for (double density : {0.0, 1.0}) {
    const RandomProtocolSpec spec =
        SampleRandomProtocol(6, 18, density, false, rng);
    const auto protocol = MakeRandomProtocol(spec);
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    EXPECT_TRUE(result.AllMatch(ReferenceTranscript(*protocol))) << density;
  }
}

TEST(EdgeCases, EpsilonZeroChannelsBehaveNoiselessly) {
  Rng rng(8);
  const CorrelatedNoisyChannel channel(0.0);
  const InputSetInstance instance{{0, 1, 4}};
  const auto protocol = MakeInputSetProtocol(instance);
  const ExecutionResult result = Execute(*protocol, channel, rng);
  EXPECT_EQ(result.shared(), ReferenceTranscript(*protocol));
}

TEST(EdgeCases, RepetitionSimWithNEqualsOne) {
  Rng rng(9);
  const CorrelatedNoisyChannel channel(0.1);
  const RepetitionSimulator sim;  // default rep factor at n=1 is rep_c+1
  EXPECT_GE(sim.EffectiveRepFactor(1), 2);
  const std::vector<std::uint8_t> bits{1};
  const auto protocol = MakeOrProtocol(bits);
  int correct = 0;
  for (int t = 0; t < 20; ++t) {
    const SimulationResult result = sim.Simulate(*protocol, channel, rng);
    correct += result.outputs[0] == PartyOutput{1};
  }
  EXPECT_GE(correct, 18);
}

}  // namespace
}  // namespace noisybeeps
