#include "ecc/repetition.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "ecc/code.h"

namespace noisybeeps {
namespace {

TEST(RepetitionCode, EncodeRepeats) {
  const RepetitionCode code(5);
  EXPECT_EQ(code.Encode(0).ToString(), "00000");
  EXPECT_EQ(code.Encode(1).ToString(), "11111");
  EXPECT_EQ(code.num_messages(), 2u);
  EXPECT_EQ(code.codeword_length(), 5u);
}

TEST(RepetitionCode, RejectsBadParameters) {
  EXPECT_THROW(RepetitionCode(0), std::invalid_argument);
  const RepetitionCode code(3);
  EXPECT_THROW((void)code.Encode(2), std::invalid_argument);
  EXPECT_THROW((void)code.Decode(BitString::FromString("11")),
               std::invalid_argument);
}

TEST(RepetitionCode, MajorityDecoding) {
  const RepetitionCode code(5);
  EXPECT_EQ(code.Decode(BitString::FromString("00000")), 0u);
  EXPECT_EQ(code.Decode(BitString::FromString("00100")), 0u);
  EXPECT_EQ(code.Decode(BitString::FromString("01101")), 1u);
  EXPECT_EQ(code.Decode(BitString::FromString("11111")), 1u);
}

TEST(RepetitionCode, TieBreaksToOne) {
  const RepetitionCode code(4);
  EXPECT_EQ(code.Decode(BitString::FromString("0101")), 1u);
}

TEST(RepetitionCode, MinimumDistanceEqualsLength) {
  for (std::size_t r : {1u, 2u, 3u, 7u}) {
    EXPECT_EQ(MinimumDistance(RepetitionCode(r)), r);
  }
}

class RepetitionCorrectionTest : public ::testing::TestWithParam<int> {};

TEST_P(RepetitionCorrectionTest, CorrectsUpToHalfMinusOneFlips) {
  const int r = GetParam();
  const RepetitionCode code(r);
  const int correctable = (r - 1) / 2;
  for (std::uint64_t msg : {0u, 1u}) {
    BitString word = code.Encode(msg);
    for (int e = 0; e < correctable; ++e) {
      word.Set(e, !word[e]);
      EXPECT_EQ(code.Decode(word), msg)
          << "r=" << r << " msg=" << msg << " errors=" << e + 1;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, RepetitionCorrectionTest,
                         ::testing::Values(3, 5, 7, 9, 15, 33));

}  // namespace
}  // namespace noisybeeps
