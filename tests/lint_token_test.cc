// The nblint lexer and structural model (stage one of the checker).
#include "lint/model.h"
#include "lint/token.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace noisybeeps::lint {
namespace {

std::vector<Token> CodeTokens(const std::string& content) {
  std::vector<Token> out;
  for (const Token& t : Lex(content)) {
    if (t.kind != TokenKind::kComment) out.push_back(t);
  }
  return out;
}

// --- lexer ------------------------------------------------------------------

TEST(LintLexer, ClassifiesBasicTokenKinds) {
  const auto tokens = Lex("int x = 1.5; // done\n\"str\" 'c'");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[3].text, "1.5");
  EXPECT_EQ(tokens[5].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[5].text, "// done");
  EXPECT_EQ(tokens[6].kind, TokenKind::kString);
  EXPECT_EQ(tokens[6].text, "\"str\"");
  EXPECT_EQ(tokens[7].kind, TokenKind::kChar);
  EXPECT_EQ(tokens[7].line, 2);
}

TEST(LintLexer, CommentsAreSingleTokensWithLineNumbers) {
  const auto tokens = Lex("a\n/* two\nlines */\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[1].line, 2);
  // The block comment spans lines 2-3, so 'b' sits on line 4.
  EXPECT_EQ(tokens[2].text, "b");
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(LintLexer, MaximalMunchPunctuators) {
  const auto tokens = Lex("a<<=b::c->d<<e");
  std::vector<std::string> texts;
  for (const Token& t : tokens) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"a", "<<=", "b", "::", "c",
                                             "->", "d", "<<", "e"}));
}

TEST(LintLexer, DigitSeparatorIsNotACharLiteral) {
  const auto tokens = Lex("int big = 1'000'000; int after = 7;");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[3].text, "1'000'000");
  // The trailing declaration survives intact (nothing ate it as a char).
  EXPECT_EQ(tokens[tokens.size() - 2].text, "7");
}

TEST(LintLexer, RawStringsAndEscapes) {
  const auto tokens = Lex("auto a = R\"(no \"quote\" trouble)\"; int k;");
  ASSERT_GE(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(StringLiteralText(tokens[3]), "no \"quote\" trouble");
  const auto esc = Lex("auto s = \"a\\\"b\"; int keep = 3;");
  EXPECT_EQ(esc[3].kind, TokenKind::kString);
  EXPECT_EQ(StringLiteralText(esc[3]), "a\\\"b");
  EXPECT_EQ(esc[esc.size() - 2].text, "3");
}

TEST(LintLexer, UnterminatedLiteralsDegradeGracefully) {
  EXPECT_FALSE(Lex("auto s = \"never closed").empty());
  EXPECT_FALSE(Lex("/* never closed").empty());
  EXPECT_FALSE(Lex("R\"(never closed").empty());
}

TEST(LintLexer, FloatLiteralClassification) {
  const auto is_float = [](const std::string& text) {
    const auto tokens = Lex(text);
    return tokens.size() == 1 && IsFloatLiteral(tokens[0]);
  };
  EXPECT_TRUE(is_float("1.5"));
  EXPECT_TRUE(is_float("1e9"));
  EXPECT_TRUE(is_float("0.5f"));
  EXPECT_TRUE(is_float("0x1p3"));  // hex float: p exponent
  EXPECT_FALSE(is_float("10"));
  EXPECT_FALSE(is_float("1'000'000"));
  EXPECT_FALSE(is_float("0x1e"));  // hex INTEGER: e is a digit, not exponent
  EXPECT_FALSE(is_float("0xFF"));
}

TEST(LintLexer, CommentTextStripsMarkers) {
  const auto tokens = Lex("// NBLINT(x): why\n/* block body */");
  EXPECT_EQ(CommentText(tokens[0]), "NBLINT(x): why");
  EXPECT_EQ(CommentText(tokens[1]), "block body");
}

// --- FileModel --------------------------------------------------------------

TEST(LintModel, ExtractsIncludesWithModules) {
  const FileModel model = FileModel::Build(
      {"src/protocol/engine.h",
       "#include <vector>\n"
       "#include \"channel/channel.h\"\n"
       "#include \"util/rng.h\"\n"
       "// #include \"fault/plan.h\" -- commented out\n"});
  ASSERT_EQ(model.includes().size(), 3u);
  EXPECT_TRUE(model.includes()[0].system);
  EXPECT_EQ(model.includes()[0].target, "vector");
  EXPECT_EQ(model.includes()[1].module, "channel");
  EXPECT_EQ(model.includes()[1].line, 2);
  EXPECT_EQ(model.includes()[2].module, "util");
  EXPECT_EQ(model.module(), "protocol");
  EXPECT_TRUE(model.is_header());
}

TEST(LintModel, FindsFunctionsAndBoundaries) {
  const FileModel model = FileModel::Build(
      {"src/channel/foo.cc",
       "int Helper(int a) { return a; }\n"
       "void Foo::Deliver(int n) {\n"
       "  Use(n);\n"
       "}\n"
       "bool Declared(int x);\n"});
  ASSERT_EQ(model.functions().size(), 3u);
  EXPECT_EQ(model.functions()[0].name, "Helper");
  EXPECT_TRUE(model.functions()[0].is_definition);
  EXPECT_EQ(model.functions()[1].qualified_name, "Foo::Deliver");
  EXPECT_EQ(model.functions()[1].class_name, "Foo");
  EXPECT_EQ(model.functions()[1].line, 2);
  EXPECT_EQ(model.functions()[2].name, "Declared");
  EXPECT_FALSE(model.functions()[2].is_definition);
}

TEST(LintModel, InClassMethodsGetTheirClassName) {
  const FileModel model = FileModel::Build(
      {"src/channel/foo.h",
       "class Chan : public Base {\n"
       " public:\n"
       "  bool Deliver(int n) { return n > 0; }\n"
       "};\n"});
  ASSERT_EQ(model.functions().size(), 1u);
  EXPECT_EQ(model.functions()[0].name, "Deliver");
  // The base clause must not hijack the class name.
  EXPECT_EQ(model.functions()[0].class_name, "Chan");
}

TEST(LintModel, CallsAreNotFunctions) {
  const FileModel model = FileModel::Build(
      {"src/util/x.cc",
       "int F() {\n"
       "  Helper(1);\n"
       "  return Other(2) + 3;\n"
       "}\n"});
  ASSERT_EQ(model.functions().size(), 1u);
  EXPECT_EQ(model.functions()[0].name, "F");
}

TEST(LintModel, ValueTypesRecordDeclarations) {
  const FileModel model = FileModel::Build(
      {"src/analysis/a.cc",
       "double rate = 0.5;\n"
       "std::ostringstream os;\n"
       "void G(double eps, float scale) {}\n"
       "double Compute(int n);\n"});
  EXPECT_EQ(model.value_types().at("rate"), "double");
  EXPECT_EQ(model.value_types().at("os"), "std::ostringstream");
  EXPECT_EQ(model.value_types().at("eps"), "double");
  EXPECT_EQ(model.value_types().at("scale"), "float");
  // Compute is a function RETURNING double, not a double variable.
  EXPECT_EQ(model.value_types().count("Compute"), 0u);
}

TEST(LintModel, LineMentionsScansCodeAndStringsOnly) {
  const FileModel model = FileModel::Build(
      {"src/tasks/t.cc",
       "Open(\"run.nbckpt\");\n"
       "int checkpoint_count = 0;\n"
       "int x = 0;  // a checkpoint remark\n"});
  EXPECT_TRUE(model.LineMentions(1, "ckpt"));
  EXPECT_TRUE(model.LineMentions(2, "checkpoint"));
  EXPECT_FALSE(model.LineMentions(3, "checkpoint"));  // comments excluded
}

// --- RepoModel --------------------------------------------------------------

TEST(LintModel, RepoGraphEdgesAndReachability) {
  const RepoModel repo({
      {"src/util/a.h", "int a();\n"},
      {"src/channel/b.h", "#include \"util/a.h\"\n"},
      {"src/protocol/c.h", "#include \"channel/b.h\"\n"},
  });
  EXPECT_EQ(repo.modules().size(), 3u);
  ASSERT_EQ(repo.edges().count("protocol"), 1u);
  EXPECT_EQ(repo.edges().at("protocol").at("channel").file,
            "src/protocol/c.h");
  EXPECT_TRUE(repo.DependsOn("protocol", "util"));  // transitive
  EXPECT_FALSE(repo.DependsOn("util", "protocol"));
}

TEST(LintModel, TypeOfConsultsThePairedHeader) {
  const RepoModel repo({
      {"src/fault/plan.h", "struct Spec { double beep_prob = 0.5; };\n"},
      {"src/fault/plan.cc", "#include \"fault/plan.h\"\nint x = 0;\n"},
  });
  const FileModel* cc = repo.FindFile("src/fault/plan.cc");
  ASSERT_NE(cc, nullptr);
  EXPECT_EQ(repo.TypeOf(*cc, "beep_prob"), "double");
  EXPECT_EQ(repo.TypeOf(*cc, "unknown"), "");
}

TEST(LintModel, CodeIndicesSkipComments) {
  const FileModel model =
      FileModel::Build({"src/util/c.cc", "// lead\nint x; /* mid */ int y;\n"});
  for (const std::size_t i : model.code()) {
    EXPECT_NE(model.tokens()[i].kind, TokenKind::kComment);
  }
  EXPECT_LT(model.code().size(), model.tokens().size());
}

}  // namespace
}  // namespace noisybeeps::lint
