// ResultCache: crash-safe content-addressed storage for job results.
// Covers the graceful-degradation ladder (miss, rot-quarantine, mis-keyed
// quarantine, counted write failure) and -- the PR 8 concurrency
// acceptance -- parallel identical and near-identical keys racing
// insert/lookup/quarantine from ParallelForEach workers, which must be
// TSan-clean and end in a consistent on-disk state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "failpoint/fail_plan.h"
#include "failpoint/fs.h"
#include "service/result_cache.h"
#include "util/parallel.h"

namespace noisybeeps::service {
namespace {

namespace stdfs = std::filesystem;

// A fresh per-test directory: concurrency tests hammer the same keys, so
// leftovers from a previous test must not masquerade as hits.
std::string FreshDir(const std::string& name) {
  const stdfs::path dir = stdfs::path(::testing::TempDir()) / name;
  stdfs::remove_all(dir);
  stdfs::create_directories(dir);
  return dir.string();
}

TEST(ResultCache, MissThenInsertThenHit) {
  ResultCache cache(failpoint::RealFs::Instance(), FreshDir("cache_basic"));
  EXPECT_EQ(cache.Lookup(42), std::nullopt);
  EXPECT_TRUE(cache.Insert(42, "payload-bytes"));
  EXPECT_EQ(cache.Lookup(42), "payload-bytes");
  EXPECT_EQ(cache.Lookup(43), std::nullopt);  // near-identical key: miss
  const ResultCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1);
  EXPECT_EQ(counters.misses, 2);
  EXPECT_EQ(counters.inserts, 1);
  EXPECT_EQ(counters.quarantined, 0);
}

TEST(ResultCache, BitRotQuarantinesAndReportsAMiss) {
  const std::string dir = FreshDir("cache_rot");
  ResultCache cache(failpoint::RealFs::Instance(), dir);
  ASSERT_TRUE(cache.Insert(7, "original"));
  {
    std::ofstream rot(cache.EntryPath(7), std::ios::binary);
    rot << "not a checkpoint at all";
  }
  EXPECT_EQ(cache.Lookup(7), std::nullopt);
  EXPECT_TRUE(stdfs::exists(cache.EntryPath(7) + ".corrupt"))
      << "rot must be quarantined for forensics, not deleted";
  EXPECT_FALSE(stdfs::exists(cache.EntryPath(7)));
  EXPECT_EQ(cache.counters().quarantined, 1);
  // The caller recomputes and reinserts; the cache is whole again.
  EXPECT_TRUE(cache.Insert(7, "recomputed"));
  EXPECT_EQ(cache.Lookup(7), "recomputed");
}

TEST(ResultCache, MisKeyedEntryQuarantinesEvenWithAValidChecksum) {
  const std::string dir = FreshDir("cache_miskey");
  ResultCache cache(failpoint::RealFs::Instance(), dir);
  ASSERT_TRUE(cache.Insert(1, "belongs-to-key-1"));
  // A byte-valid checkpoint under the wrong name: its internal
  // config_hash (1) contradicts the key the path claims (2).
  stdfs::rename(cache.EntryPath(1), cache.EntryPath(2));
  EXPECT_EQ(cache.Lookup(2), std::nullopt);
  EXPECT_TRUE(stdfs::exists(cache.EntryPath(2) + ".corrupt"));
  EXPECT_EQ(cache.counters().quarantined, 1);
}

TEST(ResultCache, ExplicitQuarantineEvictsTheEntry) {
  ResultCache cache(failpoint::RealFs::Instance(), FreshDir("cache_evict"));
  ASSERT_TRUE(cache.Insert(5, "decodes-to-garbage"));
  cache.Quarantine(5);
  EXPECT_EQ(cache.Lookup(5), std::nullopt);
  EXPECT_EQ(cache.counters().quarantined, 1);
}

TEST(ResultCache, FailedInsertIsCountedNotFatal) {
  failpoint::FailPlan plan;
  plan.Fail(failpoint::FailOp::kWrite, 0, 0);
  failpoint::FaultingFs fs(failpoint::RealFs::Instance(), plan);
  ResultCache cache(&fs, FreshDir("cache_failwrite"));
  EXPECT_FALSE(cache.Insert(9, "never lands"));
  EXPECT_EQ(cache.counters().write_failures, 1);
  EXPECT_EQ(cache.Lookup(9), std::nullopt);  // one entry colder, no more
  // The writer cleaned up after itself.
  EXPECT_FALSE(stdfs::exists(cache.EntryPath(9) + ".tmp"));
  // The next insert (hit window passed) succeeds.
  EXPECT_TRUE(cache.Insert(9, "lands now"));
  EXPECT_EQ(cache.Lookup(9), "lands now");
}

TEST(ResultCache, RemoveCheckpointIsBestEffort) {
  ResultCache cache(failpoint::RealFs::Instance(), FreshDir("cache_rmckpt"));
  // Removing a checkpoint that never existed must not throw.
  EXPECT_NO_THROW(cache.RemoveCheckpoint(3));
  {
    std::ofstream ckpt(cache.CheckpointPath(3), std::ios::binary);
    ckpt << "in-flight bytes";
  }
  cache.RemoveCheckpoint(3);
  EXPECT_FALSE(stdfs::exists(cache.CheckpointPath(3)));
}

// --- concurrency ----------------------------------------------------------

std::string PayloadFor(std::uint64_t key) {
  return "payload-" + std::to_string(key);
}

TEST(ResultCacheConcurrency, ParallelIdenticalAndNearIdenticalKeys) {
  ResultCache cache(failpoint::RealFs::Instance(), FreshDir("cache_race"));
  // 64 workers hammer 4 keys: per key, racing inserts of the SAME payload
  // (identical JobSpecs) while other workers race lookups (near-identical
  // JobSpecs map to the sibling keys).  Every hit must return the one
  // true payload -- a torn or spliced read would surface here (and under
  // TSan as a race).
  constexpr int kOps = 64;
  constexpr std::uint64_t kKeys = 4;
  std::atomic<int> wrong_payloads{0};
  (void)ParallelForEach(
      kOps,
      [&](int i) {
        const std::uint64_t key = static_cast<std::uint64_t>(i) % kKeys;
        if (i % 2 == 0) {
          (void)cache.Insert(key, PayloadFor(key));
        } else if (std::optional<std::string> hit = cache.Lookup(key)) {
          if (*hit != PayloadFor(key)) wrong_payloads.fetch_add(1);
        }
        return 0;
      },
      8);
  EXPECT_EQ(wrong_payloads.load(), 0);
  // Quiescent state: every key resolves to its payload, no stray debris.
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    (void)cache.Insert(key, PayloadFor(key));
    EXPECT_EQ(cache.Lookup(key), PayloadFor(key)) << key;
    EXPECT_FALSE(stdfs::exists(cache.EntryPath(key) + ".tmp")) << key;
  }
  const ResultCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.quarantined, 0);
  EXPECT_EQ(counters.write_failures, 0);
  EXPECT_EQ(counters.hits + counters.misses, kOps / 2 + kKeys);
}

TEST(ResultCacheConcurrency, QuarantineRacingLookupStaysConsistent) {
  ResultCache cache(failpoint::RealFs::Instance(), FreshDir("cache_qrace"));
  constexpr std::uint64_t kKey = 11;
  ASSERT_TRUE(cache.Insert(kKey, PayloadFor(kKey)));
  // Lookups race an explicit quarantine and reinserts.  Any individual
  // lookup may hit or miss; what must NEVER happen is a wrong payload or
  // an FsError escaping.
  std::atomic<int> wrong_payloads{0};
  (void)ParallelForEach(
      32,
      [&](int i) {
        if (i == 16) {
          cache.Quarantine(kKey);
        } else if (i % 4 == 0) {
          (void)cache.Insert(kKey, PayloadFor(kKey));
        } else if (std::optional<std::string> hit = cache.Lookup(kKey)) {
          if (*hit != PayloadFor(kKey)) wrong_payloads.fetch_add(1);
        }
        return 0;
      },
      8);
  EXPECT_EQ(wrong_payloads.load(), 0);
  (void)cache.Insert(kKey, PayloadFor(kKey));
  EXPECT_EQ(cache.Lookup(kKey), PayloadFor(kKey));
}

}  // namespace
}  // namespace noisybeeps::service
