#include "analysis/entropy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace noisybeeps {
namespace {

TEST(EntropyBits, UniformDistribution) {
  const std::vector<double> uniform(8, 0.125);
  EXPECT_NEAR(EntropyBits(uniform), 3.0, 1e-12);
}

TEST(EntropyBits, PointMassIsZero) {
  const std::vector<double> point{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(EntropyBits(point), 0.0);
}

TEST(EntropyBits, BiasedCoin) {
  const std::vector<double> coin{0.25, 0.75};
  const double expected = -(0.25 * std::log2(0.25) + 0.75 * std::log2(0.75));
  EXPECT_NEAR(EntropyBits(coin), expected, 1e-12);
}

TEST(EntropyBits, RejectsNegativeEntries) {
  const std::vector<double> bad{-0.1, 1.1};
  EXPECT_THROW((void)EntropyBits(bad), std::invalid_argument);
}

TEST(LogSumExp2, MatchesDirectSum) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  EXPECT_NEAR(LogSumExp2(values), std::log2(2.0 + 4.0 + 8.0), 1e-12);
}

TEST(LogSumExp2, StableForTinyLogWeights) {
  // Direct exponentiation of -1100 underflows; the stable version must
  // return the analytic value -1100 + log2(3).
  const std::vector<double> values{-1100.0, -1100.0, -1100.0};
  EXPECT_NEAR(LogSumExp2(values), -1100.0 + std::log2(3.0), 1e-9);
}

TEST(LogSumExp2, HandlesMinusInfinityEntries) {
  const double ninf = -std::numeric_limits<double>::infinity();
  const std::vector<double> values{ninf, 2.0, ninf};
  EXPECT_NEAR(LogSumExp2(values), 2.0, 1e-12);
  const std::vector<double> all_ninf{ninf, ninf};
  EXPECT_EQ(LogSumExp2(all_ninf), ninf);
}

TEST(LogSumExp2, RejectsEmpty) {
  EXPECT_THROW((void)LogSumExp2(std::vector<double>{}),
               std::invalid_argument);
}

TEST(NormalizeLog2Weights, ProducesDistribution) {
  const std::vector<double> weights{-500.0, -501.0, -502.0};
  const std::vector<double> probs = NormalizeLog2Weights(weights);
  double total = 0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Ratios preserved: each next weight is half the previous.
  EXPECT_NEAR(probs[0] / probs[1], 2.0, 1e-9);
  EXPECT_NEAR(probs[1] / probs[2], 2.0, 1e-9);
}

TEST(NormalizeLog2Weights, MinusInfinityBecomesZero) {
  const double ninf = -std::numeric_limits<double>::infinity();
  const std::vector<double> weights{0.0, ninf};
  const std::vector<double> probs = NormalizeLog2Weights(weights);
  EXPECT_NEAR(probs[0], 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(probs[1], 0.0);
}

TEST(NormalizeLog2Weights, AllInfeasibleThrows) {
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)NormalizeLog2Weights(std::vector<double>{ninf, ninf}),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
