// The TrialCheckpoint format: round-trips, atomic writes, and -- the
// point of the exercise -- LOUD failures on every way a file on disk can
// lie to us: wrong magic, truncation at any prefix, flipped bits, a
// version from the future, and malformed record structure.  A checkpoint
// that cannot be trusted must never be silently "resumed".
#include "resilience/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "failpoint/fs.h"
#include "resilience/resilient_trials.h"
#include "util/rng.h"

namespace noisybeeps::resilience {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

void WriteRawFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TrialCheckpoint SampleCheckpoint() {
  TrialCheckpoint checkpoint;
  checkpoint.config_hash = Fnv1a64("task=demo n=8 eps=0.05");
  checkpoint.rng_state = Rng(42).SaveState();
  checkpoint.num_trials = 6;
  TrialRecord first;
  first.trial_index = 0;
  first.ledger.attempts = {{TrialFailure::kNone, 0}};
  first.payload = "alpha";
  TrialRecord second;
  second.trial_index = 2;
  second.ledger.attempts = {{TrialFailure::kDegradedVerdict, 0},
                            {TrialFailure::kTimeout, 5},
                            {TrialFailure::kNone, 10}};
  second.payload = std::string("raw\0bytes\xff", 10);
  TrialRecord third;
  third.trial_index = 5;
  third.ledger.attempts = {{TrialFailure::kException, 0},
                           {TrialFailure::kDegradedVerdict, 3}};
  third.ledger.abandoned = true;
  third.payload = "";
  checkpoint.records = {first, second, third};
  return checkpoint;
}

TEST(TrialCheckpoint, SerializeParseRoundTrip) {
  const TrialCheckpoint original = SampleCheckpoint();
  const TrialCheckpoint parsed = TrialCheckpoint::Parse(original.Serialize());
  EXPECT_EQ(parsed, original);
}

TEST(TrialCheckpoint, WriteLoadRoundTripAndNoTempLeftBehind) {
  const std::string path = TempPath("ckpt_roundtrip.nbckpt");
  const TrialCheckpoint original = SampleCheckpoint();
  WriteCheckpointAtomic(path, original);
  EXPECT_FALSE(fs::exists(path + ".tmp"))
      << "atomic write must rename the temp file away";
  const auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, original);
  fs::remove(path);
}

TEST(TrialCheckpoint, MissingFileIsFreshStartNotError) {
  EXPECT_FALSE(LoadCheckpoint(TempPath("never_written.nbckpt")).has_value());
}

TEST(TrialCheckpoint, RejectsBadMagic) {
  std::string bytes = SampleCheckpoint().Serialize();
  bytes[0] = 'X';
  try {
    (void)TrialCheckpoint::Parse(bytes);
    FAIL() << "bad magic must throw";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos)
        << e.what();
  }
}

TEST(TrialCheckpoint, RejectsTruncationAtEveryPrefix) {
  const std::string bytes = SampleCheckpoint().Serialize();
  // Every proper prefix must fail loudly: truncation, checksum mismatch,
  // or (for prefixes that keep a valid trailing-8-byte window) a
  // structural error -- never a quietly parsed partial checkpoint.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)TrialCheckpoint::Parse(bytes.substr(0, len)),
                 CheckpointError)
        << "prefix of " << len << " bytes parsed successfully";
  }
}

TEST(TrialCheckpoint, RejectsEveryFlippedByte) {
  const std::string bytes = SampleCheckpoint().Serialize();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_THROW((void)TrialCheckpoint::Parse(corrupt), CheckpointError)
        << "flipping byte " << i << " went undetected";
  }
}

TEST(TrialCheckpoint, RejectsFutureVersion) {
  // Rebuild the file with version+1 and a VALID checksum: the version
  // check itself must fire, not the checksum.
  TrialCheckpoint checkpoint = SampleCheckpoint();
  std::string bytes = checkpoint.Serialize();
  std::string body = bytes.substr(0, bytes.size() - 8);
  body[8] = static_cast<char>(kCheckpointVersion + 1);  // version field LSB
  std::string rewritten = body;
  AppendU64(rewritten, Fnv1a64(body));
  try {
    (void)TrialCheckpoint::Parse(rewritten);
    FAIL() << "future version must throw";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version"),
              std::string::npos)
        << e.what();
  }
}

TEST(TrialCheckpoint, RejectsCorruptFileOnDiskLoudly) {
  const std::string path = TempPath("ckpt_corrupt.nbckpt");
  WriteCheckpointAtomic(path, SampleCheckpoint());
  // Simulate bit rot: flip one payload byte in place.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  WriteRawFile(path, bytes);
  EXPECT_THROW((void)LoadCheckpoint(path), CheckpointError);
  fs::remove(path);
}

TEST(TrialCheckpoint, RejectsShortReadOnDisk) {
  const std::string path = TempPath("ckpt_short.nbckpt");
  const std::string bytes = SampleCheckpoint().Serialize();
  WriteRawFile(path, bytes.substr(0, bytes.size() / 2));
  try {
    (void)LoadCheckpoint(path);
    FAIL() << "short read must throw";
  } catch (const CheckpointError& e) {
    // The path is named so the operator knows which file rotted.
    EXPECT_NE(std::string(e.what()).find("ckpt_short"), std::string::npos)
        << e.what();
  }
  fs::remove(path);
}

// Structural defects with valid checksums: the record validator itself.
std::string ReserializeWithChecksum(std::string body) {
  AppendU64(body, Fnv1a64(body));
  return body;
}

std::string HeaderBytes(const TrialCheckpoint& checkpoint,
                        std::uint64_t num_records) {
  std::string out;
  AppendU64(out, 0x313054504b43424eULL);  // magic
  AppendU64(out, kCheckpointVersion);
  AppendU64(out, checkpoint.config_hash);
  for (std::uint64_t word : checkpoint.rng_state) AppendU64(out, word);
  AppendU64(out, static_cast<std::uint64_t>(checkpoint.num_trials));
  AppendU64(out, num_records);
  return out;
}

void AppendRecord(std::string& out, std::uint64_t index,
                  std::uint64_t abandoned, std::uint64_t attempts) {
  AppendU64(out, index);
  AppendU64(out, abandoned);
  AppendU64(out, attempts);
  for (std::uint64_t a = 0; a < attempts; ++a) {
    AppendU64(out, 0);  // failure = kNone
    AppendU64(out, 0);  // backoff
  }
  AppendBytes(out, "p");
}

TEST(TrialCheckpoint, RejectsStructuralDefects) {
  TrialCheckpoint base = SampleCheckpoint();
  base.records.clear();

  {  // record index beyond num_trials
    std::string body = HeaderBytes(base, 1);
    AppendRecord(body, 99, 0, 1);
    EXPECT_THROW((void)TrialCheckpoint::Parse(ReserializeWithChecksum(body)),
                 CheckpointError);
  }
  {  // duplicate / non-increasing indices
    std::string body = HeaderBytes(base, 2);
    AppendRecord(body, 1, 0, 1);
    AppendRecord(body, 1, 0, 1);
    EXPECT_THROW((void)TrialCheckpoint::Parse(ReserializeWithChecksum(body)),
                 CheckpointError);
  }
  {  // more records than trials
    std::string body = HeaderBytes(base, 7);
    EXPECT_THROW((void)TrialCheckpoint::Parse(ReserializeWithChecksum(body)),
                 CheckpointError);
  }
  {  // zero attempts
    std::string body = HeaderBytes(base, 1);
    AppendRecord(body, 0, 0, 0);
    EXPECT_THROW((void)TrialCheckpoint::Parse(ReserializeWithChecksum(body)),
                 CheckpointError);
  }
  {  // absurd record count (with matching num_trials and a VALID
     // checksum): must fail loudly before reserve() can throw
     // length_error / bad_alloc past the CheckpointError handlers
    TrialCheckpoint huge = base;
    huge.num_trials = std::numeric_limits<std::int64_t>::max();
    std::string body = HeaderBytes(huge, std::uint64_t{1} << 40);
    EXPECT_THROW((void)TrialCheckpoint::Parse(ReserializeWithChecksum(body)),
                 CheckpointError);
  }
  {  // trailing garbage after the final record
    std::string body = HeaderBytes(base, 1);
    AppendRecord(body, 0, 0, 1);
    AppendU64(body, 123);
    EXPECT_THROW((void)TrialCheckpoint::Parse(ReserializeWithChecksum(body)),
                 CheckpointError);
  }
}

TEST(ByteReader, ThrowsOnShortReads) {
  std::string bytes;
  AppendU64(bytes, 7);
  ByteReader reader(bytes);
  EXPECT_EQ(reader.U64(), 7u);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_THROW((void)reader.U64(), CheckpointError);
  std::string with_bytes;
  AppendBytes(with_bytes, "hello");
  ByteReader reader2(std::string_view(with_bytes).substr(0, 10));
  EXPECT_THROW((void)reader2.Bytes(), CheckpointError);
}

// An in-memory Fs that logs every call: proves the atomic-write protocol
// and its cleanup discipline without touching a real disk.
class RecordingFs final : public failpoint::Fs {
 public:
  [[nodiscard]] std::optional<std::string> ReadFile(
      const std::string& path) override {
    log_.push_back("read " + path);
    const auto it = files_.find(path);
    if (it == files_.end()) return std::nullopt;
    return it->second;
  }
  void WriteFile(const std::string& path, std::string_view contents) override {
    log_.push_back("write " + path);
    files_[path] = std::string(contents);
  }
  void SyncFile(const std::string& path) override {
    log_.push_back("sync " + path);
    if (fail_sync_) throw failpoint::FsError("injected sync failure");
  }
  void RenameFile(const std::string& from, const std::string& to) override {
    log_.push_back("rename " + from + " -> " + to);
    if (fail_rename_) throw failpoint::FsError("injected rename failure");
    files_[to] = files_.at(from);
    files_.erase(from);
  }
  void RemoveFile(const std::string& path) override {
    log_.push_back("remove " + path);
    files_.erase(path);
  }

  std::map<std::string, std::string> files_;
  std::vector<std::string> log_;
  bool fail_sync_ = false;
  bool fail_rename_ = false;
};

TEST(TrialCheckpoint, AtomicWriteIsWriteSyncRename) {
  RecordingFs fs;
  const TrialCheckpoint checkpoint = SampleCheckpoint();
  WriteCheckpointAtomic(fs, "ckpt", checkpoint);
  // Durability demands the data be on stable storage BEFORE the rename
  // publishes it; rename-then-sync can publish a hole.
  const std::vector<std::string> expected = {"write ckpt.tmp", "sync ckpt.tmp",
                                             "rename ckpt.tmp -> ckpt"};
  EXPECT_EQ(fs.log_, expected);
  EXPECT_EQ(fs.files_.count("ckpt.tmp"), 0u);
  EXPECT_EQ(fs.files_.at("ckpt"), checkpoint.Serialize());
  const auto loaded = LoadCheckpoint(fs, "ckpt");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, checkpoint);
}

TEST(TrialCheckpoint, SyncFailureUnlinksTheTempFile) {
  RecordingFs fs;
  fs.fail_sync_ = true;
  EXPECT_THROW(WriteCheckpointAtomic(fs, "ckpt", SampleCheckpoint()),
               CheckpointError);
  EXPECT_EQ(fs.files_.count("ckpt.tmp"), 0u)
      << "a failed checkpoint write must not leak its temp file";
  EXPECT_EQ(fs.files_.count("ckpt"), 0u);
}

TEST(TrialCheckpoint, RenameFailureUnlinksTheTempFile) {
  RecordingFs fs;
  fs.fail_rename_ = true;
  try {
    WriteCheckpointAtomic(fs, "ckpt", SampleCheckpoint());
    FAIL() << "rename failure must throw";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("ckpt"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(fs.files_.count("ckpt.tmp"), 0u)
      << "a failed rename must not leak its temp file";
}

// The corruption matrix: damage the serialized checkpoint at every
// 8-byte field boundary -- one flipped byte, or truncation to the
// boundary -- and require a LOUD CheckpointError naming the file from
// the Fs-seam load path.  Whether a run then recovers is the oracle's
// job (failpoint_oracle_test.cc); this proves no damaged field can be
// quietly resumed as a wrong result.
TEST(TrialCheckpoint, CorruptionMatrixAtEveryFieldBoundary) {
  const std::string bytes = SampleCheckpoint().Serialize();
  for (std::size_t boundary = 0; boundary < bytes.size(); boundary += 8) {
    {  // flip the field's first byte
      RecordingFs fs;
      std::string rot = bytes;
      rot[boundary] = static_cast<char>(rot[boundary] ^ 0x01);
      fs.files_["boundary.nbckpt"] = rot;
      try {
        (void)LoadCheckpoint(fs, "boundary.nbckpt");
        FAIL() << "flip at field boundary " << boundary << " went undetected";
      } catch (const CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find("boundary.nbckpt"),
                  std::string::npos)
            << e.what();
      }
    }
    {  // truncate TO the boundary
      RecordingFs fs;
      fs.files_["boundary.nbckpt"] = bytes.substr(0, boundary);
      EXPECT_THROW((void)LoadCheckpoint(fs, "boundary.nbckpt"),
                   CheckpointError)
          << "truncation at field boundary " << boundary;
    }
  }
}

// Resume-compatibility checks live in ResilientTrials: a checkpoint from a
// different config / seed / trial count must refuse to resume.
struct U64Adapter {
  [[nodiscard]] std::string Encode(const std::uint64_t& v) const {
    std::string out;
    AppendU64(out, v);
    return out;
  }
  [[nodiscard]] std::uint64_t Decode(std::string_view bytes) const {
    ByteReader reader(bytes);
    const std::uint64_t v = reader.U64();
    return v;
  }
  [[nodiscard]] TrialAssessment Assess(const std::uint64_t&) const {
    return {};
  }
};

TEST(ResilientTrials, RefusesMismatchedResume) {
  const std::string path = TempPath("ckpt_mismatch.nbckpt");
  fs::remove(path);
  const auto body = [](int t, Rng&) { return static_cast<std::uint64_t>(t); };
  ResilienceOptions opts;
  opts.checkpoint_path = path;
  opts.config_hash = Fnv1a64("config-a");
  {
    Rng rng(5);
    (void)ResilientTrials(4, rng, body, U64Adapter{}, opts);
  }
  {  // different config hash
    Rng rng(5);
    ResilienceOptions bad = opts;
    bad.config_hash = Fnv1a64("config-b");
    EXPECT_THROW((void)ResilientTrials(4, rng, body, U64Adapter{}, bad),
                 CheckpointError);
  }
  {  // different seed (parent rng state)
    Rng rng(6);
    EXPECT_THROW((void)ResilientTrials(4, rng, body, U64Adapter{}, opts),
                 CheckpointError);
  }
  {  // different trial count
    Rng rng(5);
    EXPECT_THROW((void)ResilientTrials(9, rng, body, U64Adapter{}, opts),
                 CheckpointError);
  }
  fs::remove(path);
}

}  // namespace
}  // namespace noisybeeps::resilience
