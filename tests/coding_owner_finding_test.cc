#include "coding/owner_finding.h"

#include <gtest/gtest.h>

#include "channel/correlated.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

// Builds per-party beep matrices b[i] (chunk_len bits each) and the
// resulting true transcript pi = OR_i b[i].
struct OwnerFixture {
  std::vector<BitString> beeped;
  BitString pi;
};

OwnerFixture RandomFixture(int n, int chunk_len, double density, Rng& rng) {
  OwnerFixture fx;
  fx.beeped.assign(n, BitString());
  for (int i = 0; i < n; ++i) {
    for (int m = 0; m < chunk_len; ++m) {
      fx.beeped[i].PushBack(rng.Bernoulli(density));
    }
  }
  for (int m = 0; m < chunk_len; ++m) {
    bool any = false;
    for (int i = 0; i < n; ++i) any = any || fx.beeped[i][m];
    fx.pi.PushBack(any);
  }
  return fx;
}

std::vector<BitString> SharedView(const BitString& pi, int n) {
  return std::vector<BitString>(n, pi);
}

TEST(OwnerFinding, NoiselessAssignsValidOwners) {
  Rng rng(1);
  const NoiselessChannel channel;
  const int n = 6;
  const int chunk = 12;
  const BeepCode code(chunk, 6, 7);
  for (int trial = 0; trial < 10; ++trial) {
    const OwnerFixture fx = RandomFixture(n, chunk, 0.2, rng);
    RoundEngine engine(channel, rng, n);
    const OwnerFindingResult result =
        FindOwners(engine, code, SharedView(fx.pi, n), fx.beeped);
    EXPECT_TRUE(OwnersValid(result, fx.pi, fx.beeped)) << trial;
  }
}

TEST(OwnerFinding, ZeroRoundsGetNoOwner) {
  Rng rng(2);
  const NoiselessChannel channel;
  const int n = 4;
  const int chunk = 8;
  const BeepCode code(chunk, 6, 7);
  const OwnerFixture fx = RandomFixture(n, chunk, 0.15, rng);
  RoundEngine engine(channel, rng, n);
  const OwnerFindingResult result =
      FindOwners(engine, code, SharedView(fx.pi, n), fx.beeped);
  for (int m = 0; m < chunk; ++m) {
    if (!fx.pi[m]) {
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(result.owners[i][m], -1) << "round " << m;
      }
    }
  }
}

TEST(OwnerFinding, AllOnesChunkFullyOwned) {
  // Every party beeps everywhere: all rounds must get owners.
  Rng rng(3);
  const NoiselessChannel channel;
  const int n = 5;
  const int chunk = 10;
  const BeepCode code(chunk, 6, 7);
  OwnerFixture fx;
  fx.beeped.assign(n, BitString());
  for (int i = 0; i < n; ++i) {
    for (int m = 0; m < chunk; ++m) fx.beeped[i].PushBack(true);
  }
  for (int m = 0; m < chunk; ++m) fx.pi.PushBack(true);
  RoundEngine engine(channel, rng, n);
  const OwnerFindingResult result =
      FindOwners(engine, code, SharedView(fx.pi, n), fx.beeped);
  EXPECT_TRUE(OwnersValid(result, fx.pi, fx.beeped));
  // With everyone able to own everything, party 0 (first turn) should own
  // every round.
  for (int m = 0; m < chunk; ++m) {
    EXPECT_EQ(result.owners[0][m], 0) << m;
  }
}

TEST(OwnerFinding, UniqueBeepersGetThemselves) {
  // Party i beeps exactly in round i: owner of round i must be i.
  Rng rng(4);
  const NoiselessChannel channel;
  const int n = 6;
  const BeepCode code(n, 6, 7);
  OwnerFixture fx;
  fx.beeped.assign(n, BitString());
  for (int i = 0; i < n; ++i) {
    for (int m = 0; m < n; ++m) fx.beeped[i].PushBack(m == i);
  }
  for (int m = 0; m < n; ++m) fx.pi.PushBack(true);
  RoundEngine engine(channel, rng, n);
  const OwnerFindingResult result =
      FindOwners(engine, code, SharedView(fx.pi, n), fx.beeped);
  for (int m = 0; m < n; ++m) {
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(result.owners[i][m], m);
    }
  }
}

TEST(OwnerFinding, RoundBudgetIsIterationsTimesCodeword) {
  Rng rng(5);
  const NoiselessChannel channel;
  const int n = 4;
  const int chunk = 6;
  const BeepCode code(chunk, 6, 7);
  const OwnerFixture fx = RandomFixture(n, chunk, 0.3, rng);
  RoundEngine engine(channel, rng, n);
  (void)FindOwners(engine, code, SharedView(fx.pi, n), fx.beeped);
  EXPECT_EQ(engine.rounds_used(),
            static_cast<std::int64_t>(chunk + n) * code.codeword_length());
}

class OwnerFindingNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(OwnerFindingNoiseTest, SurvivesChannelNoiseWithHighProbability) {
  const double eps = GetParam();
  Rng rng(6);
  const OneSidedUpChannel channel(eps);
  const int n = 8;
  const int chunk = 16;
  const BeepCode code(chunk, 8, 7);
  int good = 0;
  constexpr int kTrials = 25;
  for (int t = 0; t < kTrials; ++t) {
    const OwnerFixture fx = RandomFixture(n, chunk, 0.2, rng);
    RoundEngine engine(channel, rng, n);
    const OwnerFindingResult result =
        FindOwners(engine, code, SharedView(fx.pi, n), fx.beeped);
    good += OwnersValid(result, fx.pi, fx.beeped);
  }
  EXPECT_GE(good, kTrials - 2) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(NoiseRates, OwnerFindingNoiseTest,
                         ::testing::Values(0.02, 0.05, 0.10));

TEST(OwnerFinding, ValidatesShapes) {
  Rng rng(7);
  const NoiselessChannel channel;
  RoundEngine engine(channel, rng, 3);
  const BeepCode code(4, 4, 1);
  const std::vector<BitString> wrong_count(2, BitString(4));
  const std::vector<BitString> ok(3, BitString(4));
  const std::vector<BitString> wrong_len(3, BitString(5));
  EXPECT_THROW((void)FindOwners(engine, code, wrong_count, wrong_count),
               std::invalid_argument);
  EXPECT_THROW((void)FindOwners(engine, code, ok, wrong_len),
               std::invalid_argument);
}

}  // namespace
}  // namespace noisybeeps
