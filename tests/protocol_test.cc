#include <gtest/gtest.h>

#include <stdexcept>

#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "protocol/executor.h"
#include "protocol/protocol.h"
#include "protocol/round_engine.h"
#include "tasks/input_set.h"
#include "tasks/or_task.h"
#include "util/rng.h"

namespace noisybeeps {
namespace {

// A tiny hand-rolled party: beeps a fixed pattern regardless of transcript.
class PatternParty final : public Party {
 public:
  explicit PatternParty(BitString pattern) : pattern_(std::move(pattern)) {}
  [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
    return pattern_[prefix.size()];
  }
  [[nodiscard]] PartyOutput ComputeOutput(const BitString& pi) const override {
    return PartyOutput{pi.PopCount()};
  }

 private:
  BitString pattern_;
};

std::unique_ptr<Protocol> PatternProtocol(
    const std::vector<std::string>& patterns) {
  std::vector<std::unique_ptr<Party>> parties;
  for (const auto& p : patterns) {
    parties.push_back(std::make_unique<PatternParty>(BitString::FromString(p)));
  }
  const int length = static_cast<int>(patterns.front().size());
  return std::make_unique<BasicProtocol>(std::move(parties), length);
}

TEST(BasicProtocol, ValidatesConstruction) {
  EXPECT_THROW(BasicProtocol({}, 3), std::invalid_argument);
  std::vector<std::unique_ptr<Party>> with_null;
  with_null.push_back(nullptr);
  EXPECT_THROW(BasicProtocol(std::move(with_null), 1), std::invalid_argument);
}

TEST(BasicProtocol, PartyIndexChecked) {
  const auto protocol = PatternProtocol({"01"});
  EXPECT_NO_THROW((void)protocol->party(0));
  EXPECT_THROW((void)protocol->party(1), std::invalid_argument);
  EXPECT_THROW((void)protocol->party(-1), std::invalid_argument);
}

TEST(ReferenceTranscript, IsTheOrOfPatterns) {
  const auto protocol = PatternProtocol({"0101", "0011", "0000"});
  EXPECT_EQ(ReferenceTranscript(*protocol).ToString(), "0111");
}

TEST(OrOfBeeps, MatchesRoundwise) {
  const auto protocol = PatternProtocol({"10", "01"});
  EXPECT_TRUE(OrOfBeeps(*protocol, BitString()));
  EXPECT_TRUE(OrOfBeeps(*protocol, BitString::FromString("1")));
}

TEST(Execute, NoiselessMatchesReference) {
  Rng rng(1);
  const auto protocol = PatternProtocol({"0101100", "0011010", "0000001"});
  const NoiselessChannel channel;
  const ExecutionResult result = Execute(*protocol, channel, rng);
  EXPECT_EQ(result.shared(), ReferenceTranscript(*protocol));
  // Every party decodes popcount of the transcript.
  for (const PartyOutput& out : result.outputs) {
    EXPECT_EQ(out, PartyOutput{result.shared().PopCount()});
  }
}

TEST(Execute, CorrelatedChannelKeepsTranscriptsEqual) {
  Rng rng(2);
  const auto protocol = PatternProtocol({"0101100", "0011010"});
  const CorrelatedNoisyChannel channel(0.4);
  const ExecutionResult result = Execute(*protocol, channel, rng);
  ASSERT_EQ(result.transcripts.size(), 2u);
  EXPECT_EQ(result.transcripts[0], result.transcripts[1]);
}

TEST(Execute, IndependentChannelCanDiverge) {
  Rng rng(3);
  // Long all-zero protocol: noise creates per-party discrepancies.
  const auto protocol = PatternProtocol(
      {std::string(200, '0'), std::string(200, '0')});
  const IndependentNoisyChannel channel(0.3);
  const ExecutionResult result = Execute(*protocol, channel, rng);
  EXPECT_NE(result.transcripts[0], result.transcripts[1]);
}

TEST(Execute, NoisyTranscriptFlipRate) {
  Rng rng(4);
  const auto protocol = PatternProtocol(
      {std::string(4000, '0'), std::string(4000, '0')});
  const CorrelatedNoisyChannel channel(0.25);
  const ExecutionResult result = Execute(*protocol, channel, rng);
  const double rate =
      static_cast<double>(result.shared().PopCount()) / 4000.0;
  EXPECT_NEAR(rate, 0.25, 0.03);
}

TEST(Execute, OrTaskOneRound) {
  Rng rng(5);
  const NoiselessChannel channel;
  for (const std::vector<std::uint8_t>& bits :
       std::vector<std::vector<std::uint8_t>>{
           {0, 0, 0}, {1, 0, 0}, {0, 0, 1}, {1, 1, 1}}) {
    const auto protocol = MakeOrProtocol(bits);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    for (const PartyOutput& out : result.outputs) {
      EXPECT_EQ(out[0], OrExpected(bits) ? 1u : 0u);
    }
  }
}

TEST(RoundEngine, CountsRounds) {
  Rng rng(6);
  const NoiselessChannel channel;
  RoundEngine engine(channel, rng, 3);
  EXPECT_EQ(engine.rounds_used(), 0);
  const std::vector<std::uint8_t> beeps{0, 1, 0};
  (void)engine.Round(beeps);
  (void)engine.Round(beeps);
  EXPECT_EQ(engine.rounds_used(), 2);
}

TEST(RoundEngine, DeliversOrToAllParties) {
  Rng rng(7);
  const NoiselessChannel channel;
  RoundEngine engine(channel, rng, 3);
  const std::vector<std::uint8_t> silent{0, 0, 0};
  const std::vector<std::uint8_t> one_beeper{0, 0, 1};
  auto r1 = engine.Round(silent);
  for (auto b : r1) EXPECT_EQ(b, 0);
  auto r2 = engine.Round(one_beeper);
  for (auto b : r2) EXPECT_EQ(b, 1);
}

TEST(RoundEngine, RoundSharedRequiresCorrelated) {
  Rng rng(8);
  const IndependentNoisyChannel channel(0.1);
  RoundEngine engine(channel, rng, 2);
  const std::vector<std::uint8_t> beeps{0, 0};
  EXPECT_THROW((void)engine.RoundShared(beeps), std::invalid_argument);
}

TEST(RoundEngine, ValidatesBeepVectorSize) {
  Rng rng(9);
  const NoiselessChannel channel;
  RoundEngine engine(channel, rng, 3);
  const std::vector<std::uint8_t> wrong{0, 0};
  EXPECT_THROW((void)engine.Round(wrong), std::invalid_argument);
}

TEST(Execute, AdaptivePartySeesOwnTranscript) {
  // A party that echoes the previous received bit: under a noiseless
  // channel with a 1 injected in round 0 by the other party, the echo
  // keeps the transcript all ones.
  class EchoParty final : public Party {
   public:
    [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
      return !prefix.empty() && prefix[prefix.size() - 1];
    }
    [[nodiscard]] PartyOutput ComputeOutput(const BitString&) const override {
      return {};
    }
  };
  class KickstartParty final : public Party {
   public:
    [[nodiscard]] bool ChooseBeep(const BitString& prefix) const override {
      return prefix.empty();
    }
    [[nodiscard]] PartyOutput ComputeOutput(const BitString&) const override {
      return {};
    }
  };
  std::vector<std::unique_ptr<Party>> parties;
  parties.push_back(std::make_unique<KickstartParty>());
  parties.push_back(std::make_unique<EchoParty>());
  const BasicProtocol protocol(std::move(parties), 6);
  Rng rng(10);
  const NoiselessChannel channel;
  const ExecutionResult result = Execute(protocol, channel, rng);
  EXPECT_EQ(result.shared().ToString(), "111111");
}

}  // namespace
}  // namespace noisybeeps
