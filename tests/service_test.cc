// TrialService: the admission / shedding / deadline / cancel / drain
// state machine, and the nbserved line protocol over it.  Everything runs
// in-process on a FakeClock -- the robustness behaviours the daemon shows
// under real overload are all provable here without a socket, which is
// the point of the transport-agnostic core.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "resilience/clock.h"
#include "service/protocol.h"
#include "service/service.h"

namespace noisybeeps::service {
namespace {

namespace stdfs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const stdfs::path dir = stdfs::path(::testing::TempDir()) / name;
  stdfs::remove_all(dir);
  stdfs::create_directories(dir);
  return dir.string();
}

JobSpec FastSpec(std::uint64_t seed = 21) {
  JobSpec spec;
  spec.task = "input_set";
  spec.channel = "correlated";
  spec.sim = "repetition";
  spec.n = 8;
  spec.eps = 0.05;
  spec.trials = 9;
  spec.seed = seed;
  return spec;
}

ServiceOptions SmallOptions(const std::string& dir,
                            const resilience::Clock* clock) {
  ServiceOptions options;
  options.cache_dir = dir;
  options.clock = clock;
  options.max_queue = 2;
  options.retry_after_base_millis = 25;
  options.job_cost_hint_millis = 200;
  options.checkpoint_every = 4;
  return options;
}

TEST(TrialService, RunsAQueuedJobAndCachesTheRerun) {
  resilience::FakeClock clock;
  TrialService service(SmallOptions(FreshDir("svc_basic"), &clock));

  ASSERT_EQ(service.Submit({"job1", FastSpec()}), std::nullopt);
  EXPECT_EQ(service.QueueDepth(), 1u);
  const std::optional<Reply> first = service.RunNext();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->status, ReplyStatus::kOk);
  EXPECT_FALSE(first->cached);
  EXPECT_EQ(first->result.trials, 9);

  // The identical request is served from cache, bit-for-bit.
  ASSERT_EQ(service.Submit({"job2", FastSpec()}), std::nullopt);
  const std::optional<Reply> second = service.RunNext();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, ReplyStatus::kOk);
  EXPECT_TRUE(second->cached);
  EXPECT_EQ(second->result, first->result);

  // A near-identical request (different trial count -> different cache
  // key) recomputes instead of colliding with the cached entry.
  JobSpec shorter = FastSpec();
  shorter.trials = 5;
  ASSERT_EQ(service.Submit({"job3", shorter}), std::nullopt);
  const std::optional<Reply> third = service.RunNext();
  ASSERT_TRUE(third.has_value());
  EXPECT_FALSE(third->cached);
  EXPECT_EQ(third->result.trials, 5);
  EXPECT_NE(third->result.results_fingerprint,
            first->result.results_fingerprint);

  const ServiceReport report = service.report();
  EXPECT_EQ(report.submitted, 3);
  EXPECT_EQ(report.admitted, 3);
  EXPECT_EQ(report.completed, 3);
  EXPECT_EQ(report.cache_hits, 1);
  EXPECT_EQ(report.recomputed, 2);
  // The finished jobs' trial checkpoints were cleaned up.
  EXPECT_FALSE(
      stdfs::exists(service.cache().CheckpointPath(FastSpec().CacheKey())));
}

TEST(TrialService, MalformedSpecIsRejectedImmediately) {
  resilience::FakeClock clock;
  TrialService service(SmallOptions(FreshDir("svc_reject"), &clock));
  JobSpec bad = FastSpec();
  bad.task = "telepathy";
  const std::optional<Reply> reply = service.Submit({"bad1", bad});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, ReplyStatus::kError);
  EXPECT_NE(reply->error.find("unknown task"), std::string::npos);
  EXPECT_EQ(service.QueueDepth(), 0u);
  EXPECT_EQ(service.report().rejected, 1);
}

TEST(TrialService, FullQueueShedsWithDepthScaledRetryAfter) {
  resilience::FakeClock clock;
  TrialService service(SmallOptions(FreshDir("svc_full"), &clock));
  ASSERT_EQ(service.Submit({"a", FastSpec(1)}), std::nullopt);
  ASSERT_EQ(service.Submit({"b", FastSpec(2)}), std::nullopt);
  const std::optional<Reply> shed = service.Submit({"c", FastSpec(3)});
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, ReplyStatus::kShed);
  EXPECT_EQ(shed->shed_reason, ShedReason::kQueueFull);
  // Deterministic hint: cost_hint (200) x queue depth (2).
  EXPECT_EQ(shed->retry_after_millis, 400);
  // The shed is explicit, never a silent drop: submitted counts it.
  const ServiceReport report = service.report();
  EXPECT_EQ(report.submitted, 3);
  EXPECT_EQ(report.shed_queue_full, 1);
  // Draining the queue reopens admission.
  EXPECT_EQ(service.RunQueued().size(), 2u);
  EXPECT_EQ(service.Submit({"c2", FastSpec(3)}), std::nullopt);
}

TEST(TrialService, UnmeetableDeadlineIsShedAtAdmission) {
  resilience::FakeClock clock;
  TrialService service(SmallOptions(FreshDir("svc_deadline"), &clock));

  // Shorter than one job's cost hint: can NEVER be met -> retry_after 0.
  JobSpec hopeless = FastSpec();
  hopeless.deadline_millis = 100;  // < cost hint 200
  std::optional<Reply> shed = service.Submit({"h", hopeless});
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, ReplyStatus::kShed);
  EXPECT_EQ(shed->shed_reason, ShedReason::kDeadline);
  EXPECT_EQ(shed->retry_after_millis, 0);

  // Meetable when idle but not behind a queued job: positive retry-after.
  ASSERT_EQ(service.Submit({"a", FastSpec(1)}), std::nullopt);
  JobSpec squeezed = FastSpec(2);
  squeezed.deadline_millis = 300;  // >= 200, < 2 x 200
  shed = service.Submit({"s", squeezed});
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->shed_reason, ShedReason::kDeadline);
  EXPECT_GT(shed->retry_after_millis, 0);

  // With room to spare it is admitted.
  JobSpec comfy = FastSpec(3);
  comfy.deadline_millis = 1000;
  EXPECT_EQ(service.Submit({"c", comfy}), std::nullopt);
  EXPECT_EQ(service.report().shed_deadline, 2);
}

TEST(TrialService, DeadlinePassedInQueueTimesOutWithoutRunning) {
  resilience::FakeClock clock;
  TrialService service(SmallOptions(FreshDir("svc_queue_to"), &clock));
  JobSpec spec = FastSpec();
  spec.deadline_millis = 500;
  ASSERT_EQ(service.Submit({"late", spec}), std::nullopt);
  clock.Advance(500);  // the deadline passes while the job queues
  const std::optional<Reply> reply = service.RunNext();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, ReplyStatus::kTimeout);
  const ServiceReport report = service.report();
  EXPECT_EQ(report.timed_out, 1);
  EXPECT_EQ(report.completed, 0);
  // Late answers are not answers: nothing was computed or cached.
  EXPECT_EQ(service.cache().counters().misses, 0);
  EXPECT_FALSE(stdfs::exists(service.cache().EntryPath(spec.CacheKey())));
}

TEST(TrialService, DeadlineExpiryMidJobTimesOutAtABatchBoundary) {
  resilience::FakeClock clock;
  ServiceOptions options = SmallOptions(FreshDir("svc_midrun_to"), &clock);
  options.checkpoint_every = 2;
  TrialService service(options);

  // Every checkpoint sync stalls 400 virtual ms (the latency fault sleeps
  // on the service clock), so the 500 ms deadline expires mid-run: the
  // engine must stop at the next batch boundary with a timeout verdict.
  JobSpec spec = FastSpec();
  spec.fail_plan = "latency:sync@0-*:400";
  spec.deadline_millis = 500;
  ASSERT_EQ(service.Submit({"slow", spec}), std::nullopt);
  const std::optional<Reply> reply = service.RunNext();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, ReplyStatus::kTimeout);
  EXPECT_EQ(service.report().timed_out, 1);
  // Partial work IS checkpointed: a retry of the same spec resumes, not
  // restarts (the checkpoint survives under the job's cache key).
  EXPECT_TRUE(
      stdfs::exists(service.cache().CheckpointPath(spec.CacheKey())));
}

TEST(TrialService, CancelFlagCancelsTheInFlightJob) {
  resilience::FakeClock clock;
  TrialService service(SmallOptions(FreshDir("svc_cancel"), &clock));
  ASSERT_EQ(service.Submit({"j1", FastSpec()}), std::nullopt);
  service.cancel_flag().store(true);
  const std::optional<Reply> cancelled = service.RunNext();
  ASSERT_TRUE(cancelled.has_value());
  EXPECT_EQ(cancelled->status, ReplyStatus::kCancelled);
  EXPECT_EQ(service.report().cancelled, 1);

  // Clearing the flag restores service; the job completes normally.
  service.cancel_flag().store(false);
  ASSERT_EQ(service.Submit({"j2", FastSpec()}), std::nullopt);
  const std::optional<Reply> ok = service.RunNext();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, ReplyStatus::kOk);
}

TEST(TrialService, DrainShedsNewWorkButFinishesAdmittedWork) {
  resilience::FakeClock clock;
  TrialService service(SmallOptions(FreshDir("svc_drain"), &clock));
  ASSERT_EQ(service.Submit({"keep", FastSpec()}), std::nullopt);
  service.BeginDrain();
  EXPECT_TRUE(service.draining());

  const std::optional<Reply> shed = service.Submit({"late", FastSpec(2)});
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, ReplyStatus::kShed);
  EXPECT_EQ(shed->shed_reason, ShedReason::kDraining);
  EXPECT_EQ(shed->retry_after_millis, 0);  // retrying here will not help

  const std::vector<Reply> replies = service.RunQueued();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].id, "keep");
  EXPECT_EQ(replies[0].status, ReplyStatus::kOk);
  const ServiceReport report = service.report();
  EXPECT_EQ(report.shed_draining, 1);
  EXPECT_EQ(report.completed, 1);
}

TEST(TrialService, RunNextOnEmptyQueueIsNullopt) {
  resilience::FakeClock clock;
  TrialService service(SmallOptions(FreshDir("svc_empty"), &clock));
  EXPECT_EQ(service.RunNext(), std::nullopt);
  EXPECT_TRUE(service.RunQueued().empty());
}

TEST(ServiceReportFormat, SpellsTheFullTaxonomy) {
  ServiceReport report;
  report.submitted = 12;
  report.rejected = 1;
  report.admitted = 8;
  report.shed_queue_full = 2;
  report.shed_deadline = 1;
  report.completed = 7;
  report.cache_hits = 3;
  report.recomputed = 4;
  report.timed_out = 1;
  const std::string text = FormatServiceReport(report);
  EXPECT_NE(text.find("submitted=12"), std::string::npos) << text;
  EXPECT_NE(text.find("shed[queue_full=2 deadline=1 draining=0]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cache[hits=3"), std::string::npos) << text;
}

// --- the line protocol ----------------------------------------------------

TEST(ServiceProtocol, RequestLineRoundTripsEveryField) {
  Request request;
  request.id = "job-7";
  request.spec = FastSpec();
  request.spec.fault_plan = "crash:3@2";
  request.spec.fault_seed = 7;
  request.spec.fail_plan = "fail:write@0";
  request.spec.fail_seed = 11;
  request.spec.max_attempts = 2;
  request.spec.retry_backoff_millis = 5;
  request.spec.deadline_millis = 500;
  EXPECT_EQ(ParseRequestLine(FormatRequestLine(request)), request);

  // Defaulted fields are elided but parse back to the same spec.
  const Request plain{"p", FastSpec()};
  EXPECT_EQ(ParseRequestLine(FormatRequestLine(plain)), plain);
}

TEST(ServiceProtocol, RequestParsingIsStrict) {
  EXPECT_THROW((void)ParseRequestLine("task=input_set"),  // no id
               std::invalid_argument);
  EXPECT_THROW((void)ParseRequestLine("id=x blorp=1"),  // unknown key
               std::invalid_argument);
  EXPECT_THROW((void)ParseRequestLine("id=x n=many"),  // bad value
               std::invalid_argument);
  EXPECT_THROW((void)ParseRequestLine("id=x seed=-1"),  // negative unsigned
               std::invalid_argument);
}

TEST(ServiceProtocol, ReplyLinesRoundTripTextStable) {
  Reply shed;
  shed.id = "s1";
  shed.status = ReplyStatus::kShed;
  shed.shed_reason = ShedReason::kQueueFull;
  shed.retry_after_millis = 400;
  EXPECT_EQ(ParseReplyLine(FormatReplyLine(shed)), shed);

  Reply timeout;
  timeout.id = "t1";
  timeout.status = ReplyStatus::kTimeout;
  EXPECT_EQ(ParseReplyLine(FormatReplyLine(timeout)), timeout);

  Reply error;
  error.id = "e1";
  error.status = ReplyStatus::kError;
  error.error = "unknown task: telepathy (spaces survive)";
  EXPECT_EQ(ParseReplyLine(FormatReplyLine(error)), error);
}

TEST(ServiceProtocol, OkReplyRoundTripsItsSummaryFields) {
  // The full JobResult does not travel over the wire; the documented
  // contract is TEXT stability: format -> parse -> format is identity.
  Reply ok;
  ok.id = "ok1";
  ok.status = ReplyStatus::kOk;
  ok.cached = true;
  ok.result.trials = 9;
  ok.result.successes = 8;
  ok.result.verdicts = {7, 1, 1};
  ok.result.mean_rounds = 123.5;
  ok.result.mean_blowup = 3.25;
  ok.result.results_fingerprint = 0xb545f62148438a44ULL;
  ok.result.report.retried = 2;
  ok.result.report.abandoned = 1;
  const std::string line = FormatReplyLine(ok);
  const Reply parsed = ParseReplyLine(line);
  EXPECT_EQ(FormatReplyLine(parsed), line);
  EXPECT_EQ(parsed.result.results_fingerprint, ok.result.results_fingerprint);
  EXPECT_EQ(parsed.result.successes, 8);
  EXPECT_EQ(parsed.result.trials, 9);
  EXPECT_TRUE(parsed.cached);
}

TEST(ServiceProtocol, EndToEndThroughTheService) {
  resilience::FakeClock clock;
  TrialService service(SmallOptions(FreshDir("svc_proto"), &clock));
  const Request request = ParseRequestLine(
      "id=wire1 task=input_set channel=correlated sim=repetition n=8 "
      "eps=0.05 trials=9 seed=21");
  ASSERT_EQ(service.Submit(request), std::nullopt);
  const std::optional<Reply> reply = service.RunNext();
  ASSERT_TRUE(reply.has_value());
  const std::string line = FormatReplyLine(*reply);
  EXPECT_EQ(line.find("id=wire1 status=ok cached=0 fingerprint="), 0u) << line;
  // The wire line round-trips and carries the fingerprint faithfully.
  EXPECT_EQ(ParseReplyLine(line).result.results_fingerprint,
            reply->result.results_fingerprint);
}

}  // namespace
}  // namespace noisybeeps::service
