// E7 -- substrate scaling: the cost of one beeping round, per channel
// model, as the party count grows.  This is the simulator's innermost
// loop; everything else in the library multiplies it.
//
// The end-to-end execution sweep runs through bench_harness.h's resilient
// engine and surfaces its run report; the single-round loops stay plain.
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "channel/shared_randomness.h"
#include "protocol/executor.h"
#include "protocol/round_engine.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;

template <typename ChannelT>
void RoundLoop(benchmark::State& state, const ChannelT& channel) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  RoundEngine engine(channel, rng, n);
  std::vector<std::uint8_t> beeps(n, 0);
  beeps[n / 2] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Round(beeps));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RoundNoiseless(benchmark::State& state) {
  RoundLoop(state, NoiselessChannel());
}
BENCHMARK(BM_RoundNoiseless)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_RoundCorrelated(benchmark::State& state) {
  RoundLoop(state, CorrelatedNoisyChannel(0.1));
}
BENCHMARK(BM_RoundCorrelated)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_RoundOneSidedUp(benchmark::State& state) {
  RoundLoop(state, OneSidedUpChannel(1.0 / 3.0));
}
BENCHMARK(BM_RoundOneSidedUp)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_RoundIndependent(benchmark::State& state) {
  RoundLoop(state, IndependentNoisyChannel(0.1));
}
BENCHMARK(BM_RoundIndependent)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_RoundSharedRandomness(benchmark::State& state) {
  RoundLoop(state, SharedRandomnessOneSidedAdapter::PaperInstance());
}
BENCHMARK(BM_RoundSharedRandomness)->Arg(8)->Arg(64)->Arg(512);

// Full protocol execution end to end (round loop + party beep functions +
// transcript bookkeeping): rounds/second for the trivial InputSet run,
// with each trial sampling a fresh instance through the resilient engine.
void BM_ExecuteInputSet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kTrials = 32;
  const CorrelatedNoisyChannel channel(0.1);
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, 2, [&](int, Rng& rng) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const auto protocol = MakeInputSetProtocol(instance);
      const ExecutionResult result = Execute(*protocol, channel, rng);
      bench::BenchPoint point;
      point.success = InputSetAllCorrect(instance, result.outputs);
      point.rounds = protocol->length();
      return point;
    });
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(run.rounds.mean() * kTrials));
  state.counters["success_rate"] = run.successes.rate();
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_ExecuteInputSet)->Arg(8)->Arg(64)->Arg(256)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
