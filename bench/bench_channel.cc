// E7 -- substrate scaling: the cost of one beeping round, per channel
// model, as the party count grows.  This is the simulator's innermost
// loop; everything else in the library multiplies it.
//
// The end-to-end execution sweep runs through bench_harness.h's resilient
// engine and surfaces its run report; the single-round loops stay plain.
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "channel/shared_randomness.h"
#include "protocol/executor.h"
#include "protocol/round_engine.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;

template <typename ChannelT>
void RoundLoop(benchmark::State& state, const ChannelT& channel) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  RoundEngine engine(channel, rng, n);
  std::vector<std::uint8_t> beeps(n, 0);
  beeps[n / 2] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Round(beeps));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RoundNoiseless(benchmark::State& state) {
  RoundLoop(state, NoiselessChannel());
}
BENCHMARK(BM_RoundNoiseless)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_RoundCorrelated(benchmark::State& state) {
  RoundLoop(state, CorrelatedNoisyChannel(0.1));
}
BENCHMARK(BM_RoundCorrelated)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_RoundOneSidedUp(benchmark::State& state) {
  RoundLoop(state, OneSidedUpChannel(1.0 / 3.0));
}
BENCHMARK(BM_RoundOneSidedUp)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_RoundIndependent(benchmark::State& state) {
  RoundLoop(state, IndependentNoisyChannel(0.1));
}
BENCHMARK(BM_RoundIndependent)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void BM_RoundSharedRandomness(benchmark::State& state) {
  RoundLoop(state, SharedRandomnessOneSidedAdapter::PaperInstance());
}
BENCHMARK(BM_RoundSharedRandomness)->Arg(8)->Arg(64)->Arg(512);

// The packed word path (this PR): one RoundWords call per iteration, 64
// parties per u64.  Stream-compat still draws per listener (same stream
// as the scalar path, amortized loop overhead); fast mode batches the
// sampling and is the mega-n configuration -- its Args extend to 2^20
// parties, which the scalar path cannot reach in benchmark time.
template <typename ChannelT>
void RoundWordsLoop(benchmark::State& state, const ChannelT& channel,
                    WordMode mode) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  RoundEngine engine(channel, rng, n);
  engine.SetWordMode(mode);
  std::vector<std::uint64_t> beeps(WordsForParties(n), 0);
  beeps[beeps.size() / 2] = 1;  // one beeper, like the scalar loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RoundWords(beeps));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_RoundWordsIndependentCompat(benchmark::State& state) {
  RoundWordsLoop(state, IndependentNoisyChannel(0.1),
                 WordMode::kStreamCompat);
}
BENCHMARK(BM_RoundWordsIndependentCompat)->Arg(512)->Arg(4096)->Arg(65536);

void BM_RoundWordsIndependentFast(benchmark::State& state) {
  RoundWordsLoop(state, IndependentNoisyChannel(0.1), WordMode::kFast);
}
BENCHMARK(BM_RoundWordsIndependentFast)
    ->Arg(512)
    ->Arg(4096)
    ->Arg(65536)
    ->Arg(262144)
    ->Arg(1048576);

void BM_RoundWordsIndependentFastSparse(benchmark::State& state) {
  // eps * 64 < 1: the geometric skip walk, the regime where round cost is
  // dominated by the O(eps * n) flips rather than the O(n / 64) words.
  RoundWordsLoop(state, IndependentNoisyChannel(0.001), WordMode::kFast);
}
BENCHMARK(BM_RoundWordsIndependentFastSparse)
    ->Arg(65536)
    ->Arg(262144)
    ->Arg(1048576);

void BM_RoundWordsCorrelatedFast(benchmark::State& state) {
  // Shared-draw word delivery: one draw then a word fill, so cost is pure
  // memory bandwidth at any n.
  RoundWordsLoop(state, CorrelatedNoisyChannel(0.1), WordMode::kFast);
}
BENCHMARK(BM_RoundWordsCorrelatedFast)->Arg(4096)->Arg(1048576);

// Full protocol execution end to end (round loop + party beep functions +
// transcript bookkeeping): rounds/second for the trivial InputSet run,
// with each trial sampling a fresh instance through the resilient engine.
void BM_ExecuteInputSet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kTrials = 32;
  const CorrelatedNoisyChannel channel(0.1);
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, 2, [&](int, Rng& rng) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const auto protocol = MakeInputSetProtocol(instance);
      const ExecutionResult result = Execute(*protocol, channel, rng);
      bench::BenchPoint point;
      point.success = InputSetAllCorrect(instance, result.outputs);
      point.rounds = protocol->length();
      return point;
    });
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(run.rounds.mean() * kTrials));
  state.counters["success_rate"] = run.successes.rate();
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_ExecuteInputSet)->Arg(8)->Arg(64)->Arg(256)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
