// E3 -- the Section 2 / A.1.2 asymmetry: over 1->0 noise the rewind
// scheme achieves CONSTANT blowup (no repetition, no owners -- a dropped
// beep is detected by its own beeper), while over 0->1 noise the blowup
// must and does grow like log n.
//
// Also measures the A.1.2 reduction channel (one-sided-up 1/3 + shared
// 1/4 down-flip == two-sided 1/4), demonstrating that the hard direction
// subsumes the general model.
//
// Trials run through bench_harness.h's resilient engine; each cell also
// surfaces the retry/abandonment taxonomy of its run.
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "channel/one_sided.h"
#include "channel/shared_randomness.h"
#include "coding/rewind_sim.h"
#include "tasks/bit_exchange.h"
#include "util/math.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;
using bench::BenchPoint;
using bench::BenchRun;

constexpr int kTrials = 6;

void Measure(benchmark::State& state, const Channel& channel,
             const RewindSimulator& sim, int n, std::uint64_t seed) {
  BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, seed, [&](int, Rng& rng) {
      const BitExchangeInstance instance = SampleBitExchange(n, 8, rng);
      const auto protocol = MakeBitExchangeProtocol(instance);
      const SimulationResult result = sim.Simulate(*protocol, channel, rng);
      BenchPoint point;
      point.success = !result.budget_exhausted() &&
                      BitExchangeAllCorrect(instance, result.outputs);
      point.status = result.budget_exhausted() ? 2 : 0;
      point.rounds = result.noisy_rounds_used;
      point.value =
          static_cast<double>(result.noisy_rounds_used) / protocol->length();
      return point;
    });
  }
  const double log_n = CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n));
  state.counters["blowup"] = run.value.mean();
  state.counters["blowup_per_log_n"] =
      run.value.mean() / (log_n > 0 ? log_n : 1);
  state.counters["success_rate"] = run.successes.rate();
  bench::SurfaceReport(state, run.report);
}

void BM_DownNoiseConstantOverhead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OneSidedDownChannel channel(0.10);
  const RewindSimulator sim(RewindSimOptions::DownOnly());
  Measure(state, channel, sim, n, 7000 + n);
}
BENCHMARK(BM_DownNoiseConstantOverhead)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_UpNoiseLogOverhead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OneSidedUpChannel channel(0.10);
  const RewindSimulator sim;
  Measure(state, channel, sim, n, 8000 + n);
}
BENCHMARK(BM_UpNoiseLogOverhead)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_ReductionChannel(benchmark::State& state) {
  // The composite two-sided 1/4-noisy channel of A.1.2; heavier coding
  // parameters because eps = 1/4 is close to the repetition threshold.
  const int n = static_cast<int>(state.range(0));
  const auto channel = SharedRandomnessOneSidedAdapter::PaperInstance();
  RewindSimOptions options;
  options.rep_c = 8;
  options.flag_reps = 40;
  options.code_length_factor = 10;
  const RewindSimulator sim(options);
  Measure(state, channel, sim, n, 9000 + n);
}
BENCHMARK(BM_ReductionChannel)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
