// E3 -- the Section 2 / A.1.2 asymmetry: over 1->0 noise the rewind
// scheme achieves CONSTANT blowup (no repetition, no owners -- a dropped
// beep is detected by its own beeper), while over 0->1 noise the blowup
// must and does grow like log n.
//
// Also measures the A.1.2 reduction channel (one-sided-up 1/3 + shared
// 1/4 down-flip == two-sided 1/4), demonstrating that the hard direction
// subsumes the general model.
#include <benchmark/benchmark.h>

#include "channel/one_sided.h"
#include "channel/shared_randomness.h"
#include "coding/rewind_sim.h"
#include "tasks/bit_exchange.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;

constexpr int kTrials = 6;

void Measure(benchmark::State& state, const Channel& channel,
             const RewindSimulator& sim, int n, std::uint64_t seed) {
  Rng rng(seed);
  SuccessCounter counter;
  RunningStat overhead;
  for (auto _ : state) {
    for (int t = 0; t < kTrials; ++t) {
      const BitExchangeInstance instance = SampleBitExchange(n, 8, rng);
      const auto protocol = MakeBitExchangeProtocol(instance);
      const SimulationResult result = sim.Simulate(*protocol, channel, rng);
      counter.Record(!result.budget_exhausted() &&
                     BitExchangeAllCorrect(instance, result.outputs));
      overhead.Add(static_cast<double>(result.noisy_rounds_used) /
                   protocol->length());
    }
  }
  const double log_n = CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n));
  state.counters["blowup"] = overhead.mean();
  state.counters["blowup_per_log_n"] =
      overhead.mean() / (log_n > 0 ? log_n : 1);
  state.counters["success_rate"] = counter.rate();
}

void BM_DownNoiseConstantOverhead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OneSidedDownChannel channel(0.10);
  const RewindSimulator sim(RewindSimOptions::DownOnly());
  Measure(state, channel, sim, n, 7000 + n);
}
BENCHMARK(BM_DownNoiseConstantOverhead)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_UpNoiseLogOverhead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OneSidedUpChannel channel(0.10);
  const RewindSimulator sim;
  Measure(state, channel, sim, n, 8000 + n);
}
BENCHMARK(BM_UpNoiseLogOverhead)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_ReductionChannel(benchmark::State& state) {
  // The composite two-sided 1/4-noisy channel of A.1.2; heavier coding
  // parameters because eps = 1/4 is close to the repetition threshold.
  const int n = static_cast<int>(state.range(0));
  const auto channel = SharedRandomnessOneSidedAdapter::PaperInstance();
  RewindSimOptions options;
  options.rep_c = 8;
  options.flag_reps = 40;
  options.code_length_factor = 10;
  const RewindSimulator sim(options);
  Measure(state, channel, sim, n, 9000 + n);
}
BENCHMARK(BM_ReductionChannel)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
