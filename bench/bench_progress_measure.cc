// E5 -- the Theorem C.2 / C.3 tension, measured on real executions.
//
// For r-repetition InputSet protocols over the one-sided-up 1/3 channel:
//   * C.2: whenever the good-players event holds, zeta(x,pi) stays below
//     the ceiling (4/n) * 3^{4T/n}.  We report the measured max and the
//     ceiling; ratio <= 1 is the theorem.
//   * C.3's shape: E[zeta | G] tracks correctness.  Short protocols
//     (small r) have low conditional zeta AND low success; growing T
//     raises both -- the tension resolves only once T = Omega(n log n).
//
// Trials run through bench_harness.h's resilient engine; each trial's
// BenchPoint carries (zeta, event_good) and the conditional statistics
// are folded from the returned points.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "analysis/progress_measure.h"
#include "bench_harness.h"
#include "channel/one_sided.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;
using bench::BenchPoint;
using bench::BenchRun;

constexpr double kEps = 1.0 / 3.0;

BenchRun ZetaRun(int n, int r, int trials, std::uint64_t seed) {
  const OneSidedUpChannel channel(kEps);
  const auto family = MakeInputSetFamily(n, r);
  return bench::RunTrials(trials, seed, [&](int, Rng& rng) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol =
        MakeRepeatedInputSetProtocol(instance, r, RoundDecision::kAllOnes);
    const ExecutionResult run = Execute(*protocol, channel, rng);
    const ZetaResult zeta =
        ComputeZeta(*family, instance.inputs, run.shared(), kEps);
    BenchPoint point;
    point.success = InputSetAllCorrect(instance, run.outputs);
    point.rounds = protocol->length();
    point.value = zeta.zeta;
    point.extra = zeta.event_good ? 1.0 : 0.0;
    return point;
  });
}

void BM_ZetaVsTheoremC2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  const int T = 2 * n * r;
  BenchRun run;
  for (auto _ : state) {
    run = ZetaRun(n, r, 30, 13000 + 71 * n + r);
  }
  double max_zeta = 0;
  RunningStat zeta_given_good;
  int good_events = 0;
  for (const BenchPoint& point : run.points) {
    if (point.extra == 0) continue;
    ++good_events;
    max_zeta = std::max(max_zeta, point.value);
    zeta_given_good.Add(point.value);
  }
  const double bound = TheoremC2Bound(n, T, kEps);
  state.counters["T"] = T;
  state.counters["max_zeta"] = max_zeta;
  state.counters["c2_ceiling"] = bound;
  state.counters["max_over_ceiling"] = bound > 0 ? max_zeta / bound : 0;
  state.counters["mean_zeta_given_G"] = zeta_given_good.mean();
  state.counters["success_rate"] = run.successes.rate();
  state.counters["good_event_rate"] =
      static_cast<double>(good_events) / run.successes.trials();
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_ZetaVsTheoremC2)
    ->ArgsProduct({{8, 16}, {1, 2, 4, 8}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// The C.3 floor: for instances where the protocol is correct, the
// conditional measure should sit above n^{-3/4} once success is high.
void BM_ZetaFloorForCorrectProtocols(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int r = 16;  // heavy repetition: protocol essentially always right
  BenchRun run;
  for (auto _ : state) {
    run = ZetaRun(n, r, 20, 14000 + n);
  }
  RunningStat zeta_given_good;
  for (const BenchPoint& point : run.points) {
    if (point.extra != 0) zeta_given_good.Add(point.value);
  }
  state.counters["success_rate"] = run.successes.rate();
  state.counters["mean_zeta_given_G"] = zeta_given_good.mean();
  state.counters["c3_floor"] = std::pow(n, -0.75);
  state.counters["floor_satisfied"] =
      zeta_given_good.mean() >= std::pow(n, -0.75) ? 1.0 : 0.0;
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_ZetaFloorForCorrectProtocols)
    ->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
