// Shared resilient-trial harness for the E1..E12 bench binaries.
//
// Every bench's Monte Carlo loop runs through RunTrials, which drives the
// resilience engine (src/resilience/resilient_trials.h): per-trial
// generators are split from one seed, attempts are watchdog-classified,
// and the end-of-run RunReport (retries / abandonments / failure
// taxonomy) is surfaced as benchmark counters next to the scientific
// ones.  With the default policy (one attempt, no budgets, one worker)
// the engine is bit-identical to a plain serial trial loop, so the
// benches keep stable timings and reproducible statistics; a flaky or
// shared machine can opt into retries and budgets through environment
// variables without a rebuild:
//
//   NB_BENCH_MAX_ATTEMPTS  attempts per trial (default 1 = never retry)
//   NB_BENCH_ROUND_BUDGET  per-trial round budget (default 0 = unlimited)
//   NB_BENCH_WORKERS       trial workers (default 1 = serial timings)
#ifndef NOISYBEEPS_BENCH_BENCH_HARNESS_H_
#define NOISYBEEPS_BENCH_BENCH_HARNESS_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "resilience/resilient_trials.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"

namespace noisybeeps::bench {

// One trial's outcome, as every bench reports it.  `status` mirrors the
// SimulationStatus ladder (0 ok, 1 degraded, 2 failed) where the workload
// has one; `value`/`extra` are workload scalars (blowup, zeta, ...).
struct BenchPoint {
  bool success = true;
  std::uint8_t status = 0;
  std::int64_t rounds = 0;
  double value = 0;
  double extra = 0;
};

// Checkpoint codec + watchdog bridge.  A failed simulation verdict is the
// retryable failure; an incorrect-but-completed trial is a legitimate
// sample (retrying it would bias the success-rate estimate).
struct BenchPointAdapter {
  [[nodiscard]] std::string Encode(const BenchPoint& p) const {
    std::string out;
    resilience::AppendU64(out, p.success ? 1 : 0);
    resilience::AppendU64(out, p.status);
    resilience::AppendU64(out, static_cast<std::uint64_t>(p.rounds));
    resilience::AppendF64(out, p.value);
    resilience::AppendF64(out, p.extra);
    return out;
  }

  [[nodiscard]] BenchPoint Decode(std::string_view bytes) const {
    resilience::ByteReader reader(bytes);
    BenchPoint p;
    p.success = reader.U64() != 0;
    p.status = static_cast<std::uint8_t>(reader.U64());
    p.rounds = static_cast<std::int64_t>(reader.U64());
    p.value = reader.F64();
    p.extra = reader.F64();
    if (!reader.AtEnd()) {
      throw resilience::CheckpointError("trailing bytes in bench payload");
    }
    return p;
  }

  [[nodiscard]] resilience::TrialAssessment Assess(const BenchPoint& p) const {
    resilience::TrialAssessment assessment;
    if (p.status == 2) {
      assessment.verdict = resilience::TrialVerdict::kFailed;
    } else if (p.status == 1) {
      assessment.verdict = resilience::TrialVerdict::kDegraded;
    }
    assessment.rounds_used = p.rounds;
    return assessment;
  }
};

// Aggregated sweep cell: the standard statistics every bench wants, the
// raw points for bench-specific post-processing (conditional stats,
// maxima, ladders), and the resilience report.
struct BenchRun {
  SuccessCounter successes;
  RunningStat value;
  RunningStat extra;
  RunningStat rounds;
  std::vector<BenchPoint> points;
  resilience::RunReport report;

  // Pairwise combination (SuccessCounter/RunningStat::Merge underneath),
  // for benches that aggregate one report across a multi-cell search.
  void Merge(const BenchRun& other) {
    successes.Merge(other.successes);
    value.Merge(other.value);
    extra.Merge(other.extra);
    rounds.Merge(other.rounds);
    points.insert(points.end(), other.points.begin(), other.points.end());
    report.total_trials += other.report.total_trials;
    report.completed += other.report.completed;
    report.retried += other.report.retried;
    report.abandoned += other.report.abandoned;
    report.attempts += other.report.attempts;
    report.timeouts += other.report.timeouts;
    report.exceptions += other.report.exceptions;
    report.degraded_verdicts += other.report.degraded_verdicts;
    report.resumed_trials += other.report.resumed_trials;
    report.checkpoints_written += other.report.checkpoints_written;
    report.checkpoints_quarantined += other.report.checkpoints_quarantined;
    report.checkpoint_write_failures += other.report.checkpoint_write_failures;
  }
};

// Strictly parsed (util/flags.h): NB_BENCH_MAX_ATTEMPTS=all used to
// strtoll-decay to 0 and silently change the resilience policy; now any
// set-but-unparseable knob throws std::invalid_argument naming the
// variable, which aborts the bench loudly before it measures anything.
inline std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  return EnvInt64(name, fallback);
}

// The bench-wide resilience policy (see the header comment for the
// environment knobs).  Serial by default: benches time wall-clock.
inline resilience::ResilienceOptions BenchOptions() {
  resilience::ResilienceOptions opts;
  opts.retry.max_attempts =
      static_cast<int>(EnvInt("NB_BENCH_MAX_ATTEMPTS", 1));
  opts.budget.max_rounds = EnvInt("NB_BENCH_ROUND_BUDGET", 0);
  opts.num_workers = static_cast<int>(EnvInt("NB_BENCH_WORKERS", 1));
  return opts;
}

// Runs `body(trial_index, attempt_rng) -> BenchPoint` for num_trials
// trials through the resilient engine and aggregates.
template <typename Body>
BenchRun RunTrials(int num_trials, std::uint64_t seed, Body&& body,
                   const resilience::ResilienceOptions& opts = BenchOptions()) {
  Rng rng(seed);
  resilience::RunOutput<BenchPoint> out = resilience::ResilientTrials(
      num_trials, rng, std::forward<Body>(body), BenchPointAdapter{}, opts);
  BenchRun run;
  run.report = out.report;
  for (const BenchPoint& p : out.results) {
    run.successes.Record(p.success);
    run.value.Add(p.value);
    run.extra.Add(p.extra);
    run.rounds.Add(static_cast<double>(p.rounds));
  }
  run.points = std::move(out.results);
  return run;
}

// Writes the resilience taxonomy into the benchmark cell, next to the
// scientific counters the bench itself sets.
inline void SurfaceReport(benchmark::State& state,
                          const resilience::RunReport& report) {
  state.counters["trials"] = static_cast<double>(report.total_trials);
  state.counters["retried"] = static_cast<double>(report.retried);
  state.counters["abandoned"] = static_cast<double>(report.abandoned);
  state.counters["attempts"] = static_cast<double>(report.attempts);
  state.counters["timeouts"] = static_cast<double>(report.timeouts);
  state.counters["trial_exceptions"] = static_cast<double>(report.exceptions);
  state.counters["degraded_verdicts"] =
      static_cast<double>(report.degraded_verdicts);
  // The checkpoint-I/O health of the run, mirroring the io[quarantined=
  // write_failures=] block of FormatRunReport: nonzero on a bench host
  // means the sweep survived real storage trouble, which is worth seeing
  // next to the timings it may have skewed.
  state.counters["io_quarantined"] =
      static_cast<double>(report.checkpoints_quarantined);
  state.counters["io_write_failures"] =
      static_cast<double>(report.checkpoint_write_failures);
}

}  // namespace noisybeeps::bench

#endif  // NOISYBEEPS_BENCH_BENCH_HARNESS_H_
