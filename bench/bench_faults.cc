// E12 (extension) -- graceful degradation under party faults.
//
// The paper's theorems assume every party is honest and alive; this bench
// measures what each scheme actually does when parties misbehave
// (fault/fault_plan.h): for each fault kind, sweep the number of faulty
// parties and record how the verdict ladder (ok / degraded / failed) and
// majority-vote recovery respond.  The claims to check: degradation is
// graceful (ok decays into degraded-with-majority-recovery before
// anything fails outright), receive-side faults (deaf) are strictly
// milder than send-side faults, and the verified schemes (rewind,
// hierarchical) tolerate a babbler that sinks plain repetition -- the
// verification phases catch the corrupted chunks and re-simulate, paying
// rounds instead of correctness.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "bench_harness.h"
#include "channel/correlated.h"
#include "channel/one_sided.h"
#include "coding/hierarchical_sim.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "fault/fault_plan.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;

constexpr int kParties = 16;
constexpr int kTrials = 8;
constexpr double kEps = 0.05;
// Bound every run: a plan that defeats a scheme outright would otherwise
// burn the full default budget retrying forever.
constexpr std::int64_t kMaxRounds = 60000;

// One plan per (kind, faulty-party count): parties 0..f-1 misbehave with
// deterministic, bounded windows so runs terminate and seeds reproduce.
// Crashes are staggered so the population thins out gradually; babblers
// jam the early rounds (where chunks and owners are decided); deaf
// parties stay deaf for the whole run -- receive-side faults never block
// the others, so this is the mild end of the spectrum.
FaultPlan MakePlan(int kind, int faulty, std::uint64_t seed) {
  FaultPlan plan(seed);
  for (int k = 0; k < faulty; ++k) {
    switch (kind) {
      case 0:
        plan.CrashStop(k, 200 + 100 * k);
        break;
      case 1:
        plan.Sleepy(k, 100, 400);
        break;
      case 2:
        plan.StuckBeeper(k, 50, 90);
        break;
      case 3:
        plan.Babbler(k, 0, 500, 0.3);
        break;
      default:
        plan.DeafReceiver(k, 0, FaultSpec::kNoLastRound);
        break;
    }
  }
  return plan;
}

const char* KindLabel(int kind) {
  switch (kind) {
    case 0: return "crash";
    case 1: return "sleepy";
    case 2: return "stuck";
    case 3: return "babble";
    default: return "deaf";
  }
}

void Measure(benchmark::State& state, const Simulator& sim,
             const Channel& channel, std::uint64_t seed) {
  const int kind = static_cast<int>(state.range(0));
  const int faulty = static_cast<int>(state.range(1));
  state.SetLabel(std::string(KindLabel(kind)) + " x" +
                 std::to_string(faulty));
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(
        kTrials, seed + static_cast<std::uint64_t>(100 * kind + faulty),
        [&](int t, Rng& rng) {
          const InputSetInstance instance = SampleInputSet(kParties, rng);
          const auto protocol = MakeInputSetProtocol(instance);
          const BitString reference = ReferenceTranscript(*protocol);
          const FaultPlan plan =
              MakePlan(kind, faulty, seed + static_cast<std::uint64_t>(t));
          const SimulationResult result =
              sim.Simulate(*protocol, channel, plan, rng);
          bench::BenchPoint point;
          point.status = static_cast<std::uint8_t>(result.verdict.status);
          point.success = result.verdict.status != SimulationStatus::kFailed;
          point.rounds = result.noisy_rounds_used;
          point.value = static_cast<double>(result.noisy_rounds_used) /
                        protocol->length();
          point.extra =
              result.verdict.majority_transcript == reference ? 1.0 : 0.0;
          return point;
        });
  }
  int ok = 0;
  int degraded = 0;
  int failed = 0;
  for (const bench::BenchPoint& point : run.points) {
    switch (static_cast<SimulationStatus>(point.status)) {
      case SimulationStatus::kOk: ++ok; break;
      case SimulationStatus::kDegraded: ++degraded; break;
      case SimulationStatus::kFailed: ++failed; break;
    }
  }
  const double total = ok + degraded + failed;
  state.counters["ok"] = ok / total;
  state.counters["degraded"] = degraded / total;
  state.counters["failed"] = failed / total;
  state.counters["recovered"] = run.extra.mean();
  state.counters["blowup"] = run.value.mean();
  bench::SurfaceReport(state, run.report);
}

// kind in {0 crash, 1 sleepy, 2 stuck, 3 babble, 4 deaf} x faulty parties.
void FaultArgs(benchmark::internal::Benchmark* b) {
  b->ArgsProduct({{0, 1, 2, 3, 4}, {1, 2, 4}})
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

void BM_Repetition(benchmark::State& state) {
  const CorrelatedNoisyChannel channel(kEps);
  const RepetitionSimulator sim;
  Measure(state, sim, channel, 26000);
}
BENCHMARK(BM_Repetition)->Apply(FaultArgs);

void BM_Rewind(benchmark::State& state) {
  const CorrelatedNoisyChannel channel(kEps);
  RewindSimOptions options;
  options.max_rounds = kMaxRounds;
  const RewindSimulator sim(options);
  Measure(state, sim, channel, 26100);
}
BENCHMARK(BM_Rewind)->Apply(FaultArgs);

void BM_RewindDown(benchmark::State& state) {
  const OneSidedDownChannel channel(kEps);
  RewindSimOptions options = RewindSimOptions::DownOnly();
  options.max_rounds = kMaxRounds;
  const RewindSimulator sim(options);
  Measure(state, sim, channel, 26200);
}
BENCHMARK(BM_RewindDown)->Apply(FaultArgs);

void BM_Hierarchical(benchmark::State& state) {
  const CorrelatedNoisyChannel channel(kEps);
  HierarchicalSimOptions options;
  options.base.max_rounds = kMaxRounds;
  const HierarchicalSimulator sim(options);
  Measure(state, sim, channel, 26300);
}
BENCHMARK(BM_Hierarchical)->Apply(FaultArgs);

}  // namespace

BENCHMARK_MAIN();
