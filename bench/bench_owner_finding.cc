// E4 -- Theorem D.1: the finding-owners phase of Algorithm 1 assigns, to
// every 1 of the chunk transcript, an owner who actually beeped it, with
// failure probability polynomially small; the phase costs
// (chunk + n) * |codeword| = O(n log n) noisy rounds.
//
// Sweeps n (chunk = n, as in the paper) and reports the success rate of
// OwnersValid, the rounds spent, and rounds normalized by n log n.  The
// code-length ablation shows how the failure rate responds to the
// codeword-length factor.
//
// Trials run through bench_harness.h's resilient engine; each cell also
// surfaces the retry/abandonment taxonomy of its run.
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "channel/one_sided.h"
#include "coding/owner_finding.h"
#include "util/math.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;
using bench::BenchPoint;
using bench::BenchRun;

struct Fixture {
  std::vector<BitString> beeped;
  BitString pi;
};

Fixture RandomFixture(int n, int chunk_len, double density, Rng& rng) {
  Fixture fx;
  fx.beeped.assign(n, BitString());
  for (int i = 0; i < n; ++i) {
    for (int m = 0; m < chunk_len; ++m) {
      fx.beeped[i].PushBack(rng.Bernoulli(density));
    }
  }
  for (int m = 0; m < chunk_len; ++m) {
    bool any = false;
    for (int i = 0; i < n; ++i) any = any || fx.beeped[i][m];
    fx.pi.PushBack(any);
  }
  return fx;
}

void RunOwnerBench(benchmark::State& state, int n, int length_factor,
                   double eps, std::uint64_t seed) {
  const OneSidedUpChannel channel(eps);
  const BeepCode code(n, length_factor, 13);
  BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(8, seed, [&](int, Rng& rng) {
      const Fixture fx = RandomFixture(n, n, 2.0 / n, rng);
      RoundEngine engine(channel, rng, n);
      const OwnerFindingResult result = FindOwners(
          engine, code, std::vector<BitString>(n, fx.pi), fx.beeped);
      BenchPoint point;
      point.success = OwnersValid(result, fx.pi, fx.beeped);
      point.rounds = engine.rounds_used();
      return point;
    });
  }
  const double log_n = CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n));
  state.counters["success_rate"] = run.successes.rate();
  state.counters["rounds"] = run.rounds.mean();
  state.counters["rounds_per_n_log_n"] =
      run.rounds.mean() / (n * (log_n > 0 ? log_n : 1));
  bench::SurfaceReport(state, run.report);
}

void BM_OwnerFinding(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RunOwnerBench(state, n, 8, 0.05, 10000 + n);
}
BENCHMARK(BM_OwnerFinding)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_OwnerFindingCodeLengthAblation(benchmark::State& state) {
  const int factor = static_cast<int>(state.range(0));
  RunOwnerBench(state, 64, factor, 0.10, 11000 + factor);
}
BENCHMARK(BM_OwnerFindingCodeLengthAblation)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(12)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_OwnerFindingNoiseSweep(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  RunOwnerBench(state, 64, 8, eps, 12000 + state.range(0));
}
BENCHMARK(BM_OwnerFindingNoiseSweep)
    ->Arg(1)->Arg(5)->Arg(10)->Arg(20)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
