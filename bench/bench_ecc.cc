// E6 -- the code substrate Algorithm 1 leans on: throughput of the
// encode/decode pipelines and the decode-error rate of the beep code
// under one-sided channel noise, as rate and noise vary.
//
// The decode-error-rate sweep (the one Monte Carlo section) runs through
// bench_harness.h's resilient engine and surfaces its run report; the
// throughput loops stay plain -- they time single operations, not trials.
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "coding/beep_code.h"
#include "ecc/codebook.h"
#include "ecc/concatenated.h"
#include "ecc/hadamard.h"
#include "ecc/reed_solomon.h"
#include "ecc/repetition.h"
#include "util/math.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;

void BM_ReedSolomonEncode(benchmark::State& state) {
  const ReedSolomon rs(255, static_cast<int>(state.range(0)));
  Rng rng(1);
  std::vector<std::uint8_t> data(rs.data_symbols());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rs.data_symbols());
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(223)->Arg(127)->Arg(63);

void BM_ReedSolomonDecode(benchmark::State& state) {
  const ReedSolomon rs(255, 223);
  const int errors = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<std::uint8_t> data(223);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  auto word = rs.Encode(data);
  for (int e = 0; e < errors; ++e) {
    word[rng.UniformInt(255)] ^=
        static_cast<std::uint8_t>(1 + rng.UniformInt(255));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Decode(word));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 255);
}
BENCHMARK(BM_ReedSolomonDecode)->Arg(0)->Arg(4)->Arg(16);

void BM_CodebookDecode(benchmark::State& state) {
  const int q = static_cast<int>(state.range(0));
  const CodebookCode code =
      CodebookCode::Random(q, 8 * CeilLog2(q) + 8, 3);
  Rng rng(4);
  const BitString word = code.Encode(rng.UniformInt(q));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.Decode(word));
  }
}
BENCHMARK(BM_CodebookDecode)->Arg(17)->Arg(65)->Arg(257);

void BM_HadamardDecode(benchmark::State& state) {
  const HadamardCode code(static_cast<int>(state.range(0)));
  Rng rng(5);
  const BitString word = code.Encode(rng.UniformInt(code.num_messages()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.Decode(word));
  }
}
BENCHMARK(BM_HadamardDecode)->Arg(6)->Arg(8)->Arg(10);

void BM_ConcatenatedRoundTrip(benchmark::State& state) {
  const ConcatenatedCode code(
      ReedSolomon(32, 16),
      std::make_shared<CodebookCode>(CodebookCode::Random(256, 48, 7)));
  Rng rng(6);
  std::vector<std::uint8_t> data(16);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  for (auto _ : state) {
    const BitString word = code.Encode(data);
    benchmark::DoNotOptimize(code.Decode(word));
  }
}
BENCHMARK(BM_ConcatenatedRoundTrip);

// Decode-error rate of the beep code under one-sided-up noise, vs the
// length factor -- the rate/robustness trade Algorithm 1's analysis turns
// into the O(log n) cost.
void BM_BeepCodeErrorRate(benchmark::State& state) {
  const int factor = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  const BeepCode code(64, factor, 11);
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(2000, 15000 + factor, [&](int, Rng& rng) {
      const std::uint64_t msg = rng.UniformInt(65);
      BitString word = code.Encode(msg);
      for (std::size_t i = 0; i < word.size(); ++i) {
        if (!word[i] && rng.Bernoulli(eps)) word.Set(i, true);
      }
      bench::BenchPoint point;
      point.success = code.Decode(word) == msg;
      return point;
    });
  }
  state.counters["decode_error_rate"] = 1.0 - run.successes.rate();
  state.counters["codeword_bits"] =
      static_cast<double>(code.codeword_length());
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_BeepCodeErrorRate)
    ->ArgsProduct({{2, 4, 6, 8}, {5, 10, 20}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
