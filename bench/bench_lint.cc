// Perfguard suite for nblint's whole-program self-host (the warm path CI
// actually pays on every push, plus the cold extraction it falls back to).
//
// Unlike the E1..E12 experiment benches this one measures TOOLING, so it
// skips the resilient-trial harness: the workload is deterministic
// analysis over the repo's own tree, loaded once at startup from
// NB_LINT_BENCH_ROOT (default ".", i.e. run from the repo root the way
// tools/perfguard does).  An empty tree is a hard startup error -- a
// benchmark that lints nothing would "pass" any budget.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/model.h"

namespace noisybeeps::bench {
namespace {

namespace fs = std::filesystem;

// Mirrors tools/nblint.cc's LoadTree: the bench must lint exactly the
// tree nblint lints or its timings guard the wrong workload.
std::vector<lint::SourceFile> LoadTree(const fs::path& root) {
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "tools", "tests", "examples", "bench"}) {
    const fs::path base = root / dir;
    // NBLINT(io-seam-discipline): startup tree load, mirrors tools/nblint
    if (!fs::is_directory(base)) continue;
    // NBLINT(io-seam-discipline): startup tree load, mirrors tools/nblint
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      const std::string ext = entry.path().extension().string();
      if (entry.is_regular_file() &&
          (ext == ".h" || ext == ".cc" || ext == ".cpp")) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<lint::SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    // NBLINT(io-seam-discipline): startup tree load, mirrors tools/nblint
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream content;
    content << in.rdbuf();
    files.push_back(lint::SourceFile{
        // NBLINT(io-seam-discipline): path cosmetics, not measured I/O
        fs::relative(path, root).generic_string(), content.str()});
  }
  return files;
}

const std::vector<lint::SourceFile>& Tree() {
  static const std::vector<lint::SourceFile> files = [] {
    const char* env = std::getenv("NB_LINT_BENCH_ROOT");
    const fs::path root = (env != nullptr && env[0] != '\0') ? env : ".";
    std::vector<lint::SourceFile> loaded = LoadTree(root);
    if (loaded.empty()) {
      std::cerr << "bench_lint: no sources under " << root
                << " (run from the repo root or set NB_LINT_BENCH_ROOT)\n";
      std::exit(2);
    }
    return loaded;
  }();
  return files;
}

// The serialized cache a cold run leaves behind, computed once.
const std::string& ColdCache() {
  static const std::string cache = [] {
    std::string out;
    lint::LintOptions options;
    options.whole_program = true;
    options.cache_out = &out;
    benchmark::DoNotOptimize(lint::RunAllChecks(Tree(), options));
    return out;
  }();
  return cache;
}

// The CI hot path: every file extract served from the cache, then call
// resolution, effect closure, and all 21 rules from scratch.
void BM_WholeProgramWarm(benchmark::State& state) {
  const std::vector<lint::SourceFile>& files = Tree();
  const std::string& cache = ColdCache();
  lint::LintStats stats;
  for (auto _ : state) {
    lint::LintOptions options;
    options.whole_program = true;
    options.cache_in = cache;
    options.stats = &stats;
    benchmark::DoNotOptimize(lint::RunAllChecks(files, options));
  }
  state.counters["files"] = static_cast<double>(stats.files);
  state.counters["nodes"] = static_cast<double>(stats.nodes);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
}
BENCHMARK(BM_WholeProgramWarm)->Unit(benchmark::kMillisecond);

// The fallback path a cache miss pays: full token/model/CFG extraction.
void BM_WholeProgramCold(benchmark::State& state) {
  const std::vector<lint::SourceFile>& files = Tree();
  lint::LintStats stats;
  for (auto _ : state) {
    lint::LintOptions options;
    options.whole_program = true;
    options.stats = &stats;
    benchmark::DoNotOptimize(lint::RunAllChecks(files, options));
  }
  state.counters["files"] = static_cast<double>(stats.files);
  state.counters["nodes"] = static_cast<double>(stats.nodes);
}
BENCHMARK(BM_WholeProgramCold)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace noisybeeps::bench

BENCHMARK_MAIN();
