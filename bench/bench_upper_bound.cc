// E1 -- Theorem 1.2: any noiseless beeping protocol can be simulated over
// the eps-noisy channel with O(log n) blowup and error polynomially small
// in n.
//
// Sweeps n and reports, per workload, the measured blowup
// (noisy rounds / T), the blowup normalized by log2(n) -- which the
// theorem says should flatten to a constant -- and the end-to-end success
// rate.  Workloads: InputSet (the paper's task) and BitExchange (the
// generic non-adaptive protocol where every 1 has a unique owner).
//
// Trials run through bench_harness.h's resilient engine; each cell also
// surfaces the retry/abandonment taxonomy of its run.
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "channel/correlated.h"
#include "coding/rewind_sim.h"
#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "util/math.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;
using bench::BenchPoint;
using bench::BenchRun;

constexpr double kEps = 0.05;
constexpr int kTrials = 6;

void ReportCell(benchmark::State& state, const BenchRun& run, int n) {
  const double log_n = CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n));
  state.counters["blowup"] = run.value.mean();
  state.counters["blowup_per_log_n"] =
      run.value.mean() / (log_n > 0 ? log_n : 1);
  state.counters["success_rate"] = run.successes.rate();
  bench::SurfaceReport(state, run.report);
}

BenchPoint InputSetPoint(const Simulator& sim, const Channel& channel, int n,
                         Rng& rng) {
  const InputSetInstance instance = SampleInputSet(n, rng);
  const auto protocol = MakeInputSetProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  BenchPoint point;
  point.success = !result.budget_exhausted() &&
                  InputSetAllCorrect(instance, result.outputs);
  point.status = result.budget_exhausted() ? 2 : 0;
  point.rounds = result.noisy_rounds_used;
  point.value =
      static_cast<double>(result.noisy_rounds_used) / protocol->length();
  return point;
}

void BM_RewindOverhead_InputSet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CorrelatedNoisyChannel channel(kEps);
  const RewindSimulator sim;
  BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, 1000 + n, [&](int, Rng& rng) {
      return InputSetPoint(sim, channel, n, rng);
    });
  }
  ReportCell(state, run, n);
}
BENCHMARK(BM_RewindOverhead_InputSet)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_RewindOverhead_BitExchange(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CorrelatedNoisyChannel channel(kEps);
  const RewindSimulator sim;
  BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, 2000 + n, [&](int, Rng& rng) {
      const BitExchangeInstance instance = SampleBitExchange(n, 8, rng);
      const auto protocol = MakeBitExchangeProtocol(instance);
      const SimulationResult result = sim.Simulate(*protocol, channel, rng);
      BenchPoint point;
      point.success = !result.budget_exhausted() &&
                      BitExchangeAllCorrect(instance, result.outputs);
      point.status = result.budget_exhausted() ? 2 : 0;
      point.rounds = result.noisy_rounds_used;
      point.value =
          static_cast<double>(result.noisy_rounds_used) / protocol->length();
      return point;
    });
  }
  ReportCell(state, run, n);
}
BENCHMARK(BM_RewindOverhead_BitExchange)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Ablation: how the blowup splits between the simulation phase, the owner
// phase, and verification -- measured by turning the owner phase off
// (which breaks correctness under two-sided noise but isolates its cost).
void BM_RewindOverhead_NoOwnerAblation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CorrelatedNoisyChannel channel(kEps);
  RewindSimOptions options;
  options.regime = NoiseRegime::kDownOnly;  // skips owners + uses 1 rep
  options.rep_factor =
      3 * CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n)) + 1;
  const RewindSimulator sim(options);
  BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, 3000 + n, [&](int, Rng& rng) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const auto protocol = MakeInputSetProtocol(instance);
      const SimulationResult result = sim.Simulate(*protocol, channel, rng);
      BenchPoint point;
      point.success = !result.budget_exhausted() &&
                      result.AllMatch(ReferenceTranscript(*protocol));
      point.status = result.budget_exhausted() ? 2 : 0;
      point.rounds = result.noisy_rounds_used;
      point.value =
          static_cast<double>(result.noisy_rounds_used) / protocol->length();
      return point;
    });
  }
  ReportCell(state, run, n);
}
BENCHMARK(BM_RewindOverhead_NoOwnerAblation)
    ->Arg(16)->Arg(64)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Noise-rate sensitivity at fixed n: where the default parameters run out
// of headroom as eps grows toward the repetition threshold, and what
// heavier parameters buy back.
void BM_RewindOverhead_NoiseSweep(benchmark::State& state) {
  const double eps = static_cast<double>(state.range(0)) / 100.0;
  const bool heavy = state.range(1) != 0;
  const int n = 32;
  const CorrelatedNoisyChannel channel(eps);
  RewindSimOptions options;
  if (heavy) {
    options.rep_c = 8;
    options.flag_reps = 40;
    options.code_length_factor = 10;
  }
  const RewindSimulator sim(options);
  const std::uint64_t seed = 4000 + state.range(0) + (heavy ? 17 : 0);
  BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, seed, [&](int, Rng& rng) {
      return InputSetPoint(sim, channel, n, rng);
    });
  }
  ReportCell(state, run, n);
}
BENCHMARK(BM_RewindOverhead_NoiseSweep)
    ->ArgsProduct({{2, 5, 10, 15, 20}, {0, 1}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
