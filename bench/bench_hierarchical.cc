// E8 -- Section D.2's point: the flat rewind scheme's soundness decays
// with protocol length (each committed chunk trusts one flag exchange
// forever), while the hierarchical A_l-style scheme holds ANY length at
// O(log n) overhead, paying only a geometrically-vanishing audit tax.
//
// Sweeps protocol length T (BitExchange payload width) at fixed n and
// reports, for both schemes, success rate and blowup.  To make the flat
// scheme's fragility visible at bench scale, a weak-flags variant (1-rep
// level-0 verdicts) is included: flat-weak degrades with T; hierarchical
// with the same weak level-0 verdicts stays correct because the audits
// repair what slips through.
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "channel/correlated.h"
#include "coding/hierarchical_sim.h"
#include "coding/rewind_sim.h"
#include "tasks/bit_exchange.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;

constexpr int kParties = 8;
constexpr double kEps = 0.05;
constexpr int kTrials = 6;

void Run(benchmark::State& state, const Simulator& sim, int bits_per_party,
         std::uint64_t seed) {
  const CorrelatedNoisyChannel channel(kEps);
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, seed, [&](int, Rng& rng) {
      const BitExchangeInstance instance =
          SampleBitExchange(kParties, bits_per_party, rng);
      const auto protocol = MakeBitExchangeProtocol(instance);
      const SimulationResult result = sim.Simulate(*protocol, channel, rng);
      bench::BenchPoint point;
      point.success = !result.budget_exhausted() &&
                      BitExchangeAllCorrect(instance, result.outputs);
      point.status = result.budget_exhausted() ? 2 : 0;
      point.rounds = result.noisy_rounds_used;
      point.value =
          static_cast<double>(result.noisy_rounds_used) / protocol->length();
      return point;
    });
  }
  state.counters["T"] = kParties * bits_per_party;
  state.counters["success_rate"] = run.successes.rate();
  state.counters["blowup"] = run.value.mean();
  bench::SurfaceReport(state, run.report);
}

void BM_FlatRewind(benchmark::State& state) {
  const RewindSimulator sim;
  Run(state, sim, static_cast<int>(state.range(0)), 16000 + state.range(0));
}
BENCHMARK(BM_FlatRewind)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Hierarchical(benchmark::State& state) {
  const HierarchicalSimulator sim;
  Run(state, sim, static_cast<int>(state.range(0)), 17000 + state.range(0));
}
BENCHMARK(BM_Hierarchical)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_FlatRewindWeakFlags(benchmark::State& state) {
  RewindSimOptions options;
  options.flag_reps = 1;   // flaky verdicts: false commits DO happen
  options.rep_factor = 3;  // flaky chunks: verdicts get exercised often
  const RewindSimulator sim(options);
  Run(state, sim, static_cast<int>(state.range(0)), 18000 + state.range(0));
}
BENCHMARK(BM_FlatRewindWeakFlags)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_HierarchicalWeakFlags(benchmark::State& state) {
  HierarchicalSimOptions options;
  options.base.flag_reps = 1;   // same flaky level-0 verdicts...
  options.base.rep_factor = 3;  // ...and the same flaky chunks,
  const HierarchicalSimulator sim(options);  // repaired by the audits
  Run(state, sim, static_cast<int>(state.range(0)), 19000 + state.range(0));
}
BENCHMARK(BM_HierarchicalWeakFlags)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
