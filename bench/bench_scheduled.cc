// E11 (extension) -- the paper's conceptual landscape in one sweep.
//
// Section 1.3/2.1 situates the Theta(log n) result between two cheap
// regimes: the noisy broadcast channel of [EKS18] (constant rate, because
// every transcript bit has a pre-assigned owner who can verify it alone)
// and 1->0-only noise (constant rate, because a dropped beep is detected
// by its beeper).  The beeping model's log n is the price of
// SIMULTANEITY: protocols whose rounds may carry many anonymous beepers.
//
// This bench runs the SAME task (BitExchange, which is both a valid
// beeping protocol and a broadcast-style scheduled protocol) through
// three deployments over the same two-sided eps = 0.05 channel:
//   scheduled  -- ownership known a priori (EKS18 regime): O(1) blowup,
//   unscheduled-- ownership recomputed by Algorithm 1:    Theta(log n),
// and over the one-sided-down channel:
//   down-only  -- the Section 2 cheap direction:           O(1) blowup.
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "channel/correlated.h"
#include "channel/one_sided.h"
#include "coding/rewind_sim.h"
#include "tasks/bit_exchange.h"
#include "util/math.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;

constexpr int kBits = 8;
constexpr int kTrials = 6;

bench::BenchPoint SimulatePoint(const RewindSimulator& sim,
                                const Channel& channel, int n, Rng& rng) {
  const BitExchangeInstance instance = SampleBitExchange(n, kBits, rng);
  const auto protocol = MakeBitExchangeProtocol(instance);
  const SimulationResult result = sim.Simulate(*protocol, channel, rng);
  bench::BenchPoint point;
  point.success = !result.budget_exhausted() &&
                  BitExchangeAllCorrect(instance, result.outputs);
  point.status = result.budget_exhausted() ? 2 : 0;
  point.rounds = result.noisy_rounds_used;
  point.value =
      static_cast<double>(result.noisy_rounds_used) / protocol->length();
  return point;
}

void Measure(benchmark::State& state, const Channel& channel,
             bool scheduled, int n, std::uint64_t seed) {
  const RewindSimOptions options =
      scheduled ? RewindSimOptions::Scheduled(BitExchangeSchedule(n, kBits))
                : RewindSimOptions::TwoSided();
  const RewindSimulator sim(options);
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, seed, [&](int, Rng& rng) {
      return SimulatePoint(sim, channel, n, rng);
    });
  }
  const double log_n = CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n));
  state.counters["blowup"] = run.value.mean();
  state.counters["blowup_per_log_n"] =
      run.value.mean() / (log_n > 0 ? log_n : 1);
  state.counters["success_rate"] = run.successes.rate();
  bench::SurfaceReport(state, run.report);
}

void BM_ScheduledOwnership(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CorrelatedNoisyChannel channel(0.05);
  Measure(state, channel, /*scheduled=*/true, n, 30000 + n);
}
BENCHMARK(BM_ScheduledOwnership)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_AnonymousOwnership(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CorrelatedNoisyChannel channel(0.05);
  Measure(state, channel, /*scheduled=*/false, n, 31000 + n);
}
BENCHMARK(BM_AnonymousOwnership)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_DownNoiseReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OneSidedDownChannel channel(0.05);
  const RewindSimulator sim(RewindSimOptions::DownOnly());
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, 32000 + n, [&](int, Rng& rng) {
      return SimulatePoint(sim, channel, n, rng);
    });
  }
  state.counters["blowup"] = run.value.mean();
  state.counters["success_rate"] = run.successes.rate();
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_DownNoiseReference)
    ->Arg(8)->Arg(64)->Arg(256)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
