// E10 (extension) -- robustness beyond the paper's iid noise assumption.
//
// The rewind schemes' verification phases certify transcripts EXACTLY, no
// matter how the noise was generated; only the retry and flag-error rates
// depend on the noise process.  This bench runs the two-sided preset over
// Gilbert-Elliott burst channels whose STATIONARY noise rate is held
// fixed while the burstiness (mean bad-state dwell) grows, and over the
// iid channel of the same rate as the control.  The claim to check:
// success stays high while the round cost rises with burstiness (bursts
// straddle whole chunks and force re-simulation).
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "channel/burst.h"
#include "channel/correlated.h"
#include "coding/rewind_sim.h"
#include "tasks/input_set.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;

constexpr int kParties = 16;
constexpr int kTrials = 8;
constexpr double kStationary = 0.05;

void Measure(benchmark::State& state, const Channel& channel,
             std::uint64_t seed) {
  const RewindSimulator sim;
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, seed, [&](int, Rng& rng) {
      const InputSetInstance instance = SampleInputSet(kParties, rng);
      const auto protocol = MakeInputSetProtocol(instance);
      const SimulationResult result = sim.Simulate(*protocol, channel, rng);
      bench::BenchPoint point;
      point.success = !result.budget_exhausted() &&
                      InputSetAllCorrect(instance, result.outputs);
      point.status = result.budget_exhausted() ? 2 : 0;
      point.rounds = result.noisy_rounds_used;
      point.value =
          static_cast<double>(result.noisy_rounds_used) / protocol->length();
      return point;
    });
  }
  state.counters["success_rate"] = run.successes.rate();
  state.counters["blowup"] = run.value.mean();
  bench::SurfaceReport(state, run.report);
}

void BM_IidControl(benchmark::State& state) {
  const CorrelatedNoisyChannel channel(kStationary);
  Measure(state, channel, 23000);
}
BENCHMARK(BM_IidControl)->Iterations(1)->Unit(benchmark::kMillisecond);

// Burstiness sweep at fixed stationary rate: bad-state noise 0.4, good-
// state noise chosen as 0 for clarity; stationary = p_gb*0.4/(p_gb+p_bg).
// Mean burst length L = 1/p_bg; solving for p_gb at stationary 0.05:
// p_gb = p_bg * 0.05 / (0.4 - 0.05) = p_bg / 7.
void BM_BurstSweep(benchmark::State& state) {
  const int burst_len = static_cast<int>(state.range(0));
  const double p_bg = 1.0 / burst_len;
  const double p_gb = p_bg / 7.0;
  const BurstNoisyChannel channel(0.0, 0.4, p_gb, p_bg);
  state.counters["stationary"] = channel.StationaryNoiseRate();
  state.counters["mean_burst"] = channel.MeanBurstLength();
  Measure(state, channel, 24000 + burst_len);
}
BENCHMARK(BM_BurstSweep)
    ->Arg(2)->Arg(5)->Arg(10)->Arg(25)->Arg(50)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
