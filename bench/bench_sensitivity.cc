// E9 -- the combinatorial facts the lower bound stands on:
//  * Lemma B.8: among n iid uniform draws from [2n], at least n/3 are
//    unique except with probability <= (3/2)(1 - e^{-1/2});
//  * Section 2.3: |N(x)| = Theta(n^2) for a constant fraction of x (the
//    function L is sensitive at Theta(n) coordinates);
//  * Lemma C.5's ingredients on executions: the good-players event 𝒢
//    holds with constant frequency for the short trivial protocol.
#include <benchmark/benchmark.h>

#include "analysis/good_players.h"
#include "analysis/neighbors.h"
#include "channel/one_sided.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;

void BM_LemmaB8UniqueFraction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(20000 + n);
  int below_third = 0;
  constexpr int kTrials = 2000;
  RunningStat unique_fraction;
  for (auto _ : state) {
    for (int t = 0; t < kTrials; ++t) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const std::size_t unique =
          UniqueInputPlayers(instance.inputs).size();
      unique_fraction.Add(static_cast<double>(unique) / n);
      if (3 * unique <= static_cast<std::size_t>(n)) ++below_third;
    }
  }
  state.counters["pr_below_third"] =
      static_cast<double>(below_third) / kTrials;
  state.counters["lemma_b8_bound"] = LemmaB8Bound(n, 2 * n);
  state.counters["mean_unique_fraction"] = unique_fraction.mean();
}
BENCHMARK(BM_LemmaB8UniqueFraction)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_NeighborSensitivity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(21000 + n);
  RunningStat total;
  int quadratic = 0;
  constexpr int kTrials = 500;
  for (auto _ : state) {
    for (int t = 0; t < kTrials; ++t) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const std::size_t count = TotalNeighborCount(instance);
      total.Add(static_cast<double>(count));
      if (count >= static_cast<std::size_t>(n) * n / 4) ++quadratic;
    }
  }
  state.counters["mean_neighbors"] = total.mean();
  state.counters["mean_neighbors_per_n2"] =
      total.mean() / (static_cast<double>(n) * n);
  state.counters["pr_quadratic"] = static_cast<double>(quadratic) / kTrials;
}
BENCHMARK(BM_NeighborSensitivity)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_GoodEventFrequency(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(22000 + n);
  const OneSidedUpChannel channel(1.0 / 3.0);
  const auto family = MakeInputSetFamily(n);
  int good_events = 0;
  constexpr int kTrials = 40;
  for (auto _ : state) {
    for (int t = 0; t < kTrials; ++t) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const auto protocol = MakeInputSetProtocol(instance);
      const ExecutionResult run = Execute(*protocol, channel, rng);
      const auto good =
          GoodPlayers(*family, instance.inputs, run.shared());
      good_events += EventGoodHolds(good.size(), n);
    }
  }
  state.counters["pr_event_good"] =
      static_cast<double>(good_events) / kTrials;
  state.counters["lemma_c5_floor"] = 1.0 / 3.0;  // Pr[G] >= 1/3
}
BENCHMARK(BM_GoodEventFrequency)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
