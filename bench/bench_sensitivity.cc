// E9 -- the combinatorial facts the lower bound stands on:
//  * Lemma B.8: among n iid uniform draws from [2n], at least n/3 are
//    unique except with probability <= (3/2)(1 - e^{-1/2});
//  * Section 2.3: |N(x)| = Theta(n^2) for a constant fraction of x (the
//    function L is sensitive at Theta(n) coordinates);
//  * Lemma C.5's ingredients on executions: the good-players event 𝒢
//    holds with constant frequency for the short trivial protocol.
#include <benchmark/benchmark.h>

#include "analysis/good_players.h"
#include "analysis/neighbors.h"
#include "bench_harness.h"
#include "channel/one_sided.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/math.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;

void BM_LemmaB8UniqueFraction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kTrials = 2000;
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, 20000 + n, [&](int, Rng& rng) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const std::size_t unique = UniqueInputPlayers(instance.inputs).size();
      bench::BenchPoint point;
      // "Success" = the Lemma B.8 event: MORE than n/3 unique players.
      point.success = 3 * unique > static_cast<std::size_t>(n);
      point.value = static_cast<double>(unique) / n;
      return point;
    });
  }
  state.counters["pr_below_third"] = 1.0 - run.successes.rate();
  state.counters["lemma_b8_bound"] = LemmaB8Bound(n, 2 * n);
  state.counters["mean_unique_fraction"] = run.value.mean();
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_LemmaB8UniqueFraction)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_NeighborSensitivity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kTrials = 500;
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, 21000 + n, [&](int, Rng& rng) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const std::size_t count = TotalNeighborCount(instance);
      bench::BenchPoint point;
      // "Success" = the Theta(n^2) event: at least n^2/4 neighbors.
      point.success = count >= static_cast<std::size_t>(n) * n / 4;
      point.value = static_cast<double>(count);
      return point;
    });
  }
  state.counters["mean_neighbors"] = run.value.mean();
  state.counters["mean_neighbors_per_n2"] =
      run.value.mean() / (static_cast<double>(n) * n);
  state.counters["pr_quadratic"] = run.successes.rate();
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_NeighborSensitivity)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_GoodEventFrequency(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OneSidedUpChannel channel(1.0 / 3.0);
  const auto family = MakeInputSetFamily(n);
  constexpr int kTrials = 40;
  bench::BenchRun run;
  for (auto _ : state) {
    run = bench::RunTrials(kTrials, 22000 + n, [&](int, Rng& rng) {
      const InputSetInstance instance = SampleInputSet(n, rng);
      const auto protocol = MakeInputSetProtocol(instance);
      const ExecutionResult result = Execute(*protocol, channel, rng);
      const auto good =
          GoodPlayers(*family, instance.inputs, result.shared());
      bench::BenchPoint point;
      point.success = EventGoodHolds(good.size(), n);
      point.rounds = protocol->length();
      return point;
    });
  }
  state.counters["pr_event_good"] = run.successes.rate();
  state.counters["lemma_c5_floor"] = 1.0 / 3.0;  // Pr[G] >= 1/3
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_GoodEventFrequency)
    ->Arg(8)->Arg(16)->Arg(32)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
