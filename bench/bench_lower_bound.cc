// E2 -- Theorem 1.1 / C.1: InputSet_n over the one-sided-up 1/3-noisy
// channel needs Omega(n log n) rounds.
//
// Two views of the same phenomenon:
//  * BM_RepetitionSuccess: the success rate of the natural r-repetition
//    protocol (ML all-ones decision) as a function of r, per n -- the
//    curves shift right as n grows.
//  * BM_MinimalRepetition: the minimal r* reaching 90% success, per n,
//    plus r* normalized by log2(n); the normalized column flattening to a
//    constant is the Omega(log n)-overhead shape the theorem predicts.
//
// Trials run through bench_harness.h's resilient engine; the r* searches
// merge every probed cell's BenchRun so the surfaced resilience report
// covers the WHOLE search, not just the final r.
#include <benchmark/benchmark.h>

#include "bench_harness.h"
#include "channel/one_sided.h"
#include "protocol/executor.h"
#include "tasks/input_set.h"
#include "util/math.h"
#include "util/rng.h"

namespace {

using namespace noisybeeps;
using bench::BenchPoint;
using bench::BenchRun;

constexpr double kEps = 1.0 / 3.0;

BenchRun RepetitionRun(int n, int r, int trials, std::uint64_t seed) {
  const OneSidedUpChannel channel(kEps);
  return bench::RunTrials(trials, seed, [&](int, Rng& rng) {
    const InputSetInstance instance = SampleInputSet(n, rng);
    const auto protocol =
        MakeRepeatedInputSetProtocol(instance, r, RoundDecision::kAllOnes);
    const ExecutionResult result = Execute(*protocol, channel, rng);
    BenchPoint point;
    point.success = InputSetAllCorrect(instance, result.outputs);
    point.rounds = protocol->length();
    return point;
  });
}

void BM_RepetitionSuccess(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int r = static_cast<int>(state.range(1));
  BenchRun run;
  for (auto _ : state) {
    run = RepetitionRun(n, r, 80, 4000 + 131 * n + r);
  }
  state.counters["success_rate"] = run.successes.rate();
  state.counters["total_rounds"] = 2.0 * n * r;
  bench::SurfaceReport(state, run.report);
}
BENCHMARK(BM_RepetitionSuccess)
    ->ArgsProduct({{8, 32, 128}, {2, 4, 8, 12, 16, 24}})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_MinimalRepetition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  int r_star = -1;
  BenchRun search;
  for (auto _ : state) {
    for (int r = 1; r <= 128; ++r) {
      BenchRun cell = RepetitionRun(n, r, 60, 5000 + 131 * n + r);
      const double rate = cell.successes.rate();
      search.Merge(cell);
      if (rate >= 0.9) {
        r_star = r;
        break;
      }
    }
  }
  const double log_n = CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n));
  state.counters["r_star"] = r_star;
  state.counters["r_star_per_log_n"] = r_star / (log_n > 0 ? log_n : 1);
  state.counters["rounds_n_log_n"] =
      (2.0 * n * r_star) / (n * (log_n > 0 ? log_n : 1));
  bench::SurfaceReport(state, search.report);
}
BENCHMARK(BM_MinimalRepetition)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Control experiment: the SAME repetition sweep under one-sided-down
// noise with the ML "any repetition reads 1" rule.  Feedback-free
// repetition still needs r ~ log(n)/log(1/eps) here (a union bound over
// elements), but the constant is visibly smaller than in the up-noise
// sweep; the paper's CONSTANT overhead for down noise needs the
// detect-and-retry mechanism, which bench_asymmetry measures.
void BM_MinimalRepetitionDownNoise(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OneSidedDownChannel channel(kEps);
  int r_star = -1;
  BenchRun search;
  for (auto _ : state) {
    for (int r = 1; r <= 128; ++r) {
      BenchRun cell = bench::RunTrials(60, 6000 + 131 * n + r,
                                       [&](int, Rng& rng) {
        const InputSetInstance instance = SampleInputSet(n, rng);
        // Majority is wrong for down noise; "any one" is ML.  The
        // repetition protocol with threshold kMajority under-counts, so
        // emulate the ML rule by decoding the transcript directly.
        const auto protocol = MakeRepeatedInputSetProtocol(instance, r);
        const ExecutionResult run = Execute(*protocol, channel, rng);
        PartyOutput mask((2 * n + 63) / 64, 0);
        for (int e = 0; e < 2 * n; ++e) {
          bool any = false;
          for (int q = 0; q < r; ++q) {
            any = any || run.shared()[static_cast<std::size_t>(e) * r + q];
          }
          if (any) mask[e / 64] |= std::uint64_t{1} << (e % 64);
        }
        BenchPoint point;
        point.success = mask == InputSetExpectedOutput(instance);
        point.rounds = protocol->length();
        return point;
      });
      const double rate = cell.successes.rate();
      search.Merge(cell);
      if (rate >= 0.9) {
        r_star = r;
        break;
      }
    }
  }
  const double log_n = CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n));
  state.counters["r_star"] = r_star;
  state.counters["r_star_per_log_n"] = r_star / (log_n > 0 ? log_n : 1);
  bench::SurfaceReport(state, search.report);
}
BENCHMARK(BM_MinimalRepetitionDownNoise)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
