// nbsim: the command-line driver for the noisybeeps library.
//
// Runs any built-in workload over any channel under any simulator, many
// trials, and reports success rate, round cost, blowup, and the per-phase
// round breakdown -- as a human-readable summary or CSV.
//
//   nbsim --task=input_set --channel=correlated --eps=0.05
//         --sim=rewind --n=32 --trials=20 --seed=1 [--csv]
//
// Tasks:    input_set | bit_exchange | leader | counting | adaptive |
//           or_vector | random
// Channels: noiseless | correlated | up | down | independent | burst
// Sims:     raw | repetition | rewind | rewind_down | hierarchical |
//           hierarchical_down
//
// Party faults (docs/FAULTS.md): --fault-plan takes the compact grammar
// ("crash:3@100;babble:2@0-50:0.7") or @path/to/plan.csv; --fault-seed
// drives the babbler streams.  Faulted runs additionally report the
// ok/degraded/failed verdict breakdown.
//
// Resilience (docs/RESILIENCE.md): trials run through ResilientTrials, so
// a sweep can checkpoint (--checkpoint run.nbckpt --checkpoint-every K),
// be killed, and resume bit-identically at any --workers count; hung
// trials are cut off by --trial-round-budget / --trial-timeout-ms, and
// transient failures retried with --max-attempts.  Every run ends with a
// RunReport line and a results fingerprint (identical across any
// interrupt/resume schedule).  Exit 3 = interrupted via --halt-after (the
// deterministic kill used by tools/fault_soak.sh).
//
// I/O chaos (docs/RESILIENCE.md): --fail-plan injects deterministic
// checkpoint-I/O faults through the failpoint::Fs seam, using the grammar
// in src/failpoint/fail_plan.h ("crash:write@1;corrupt:read@0:4") or
// @path/to/plan.csv; --fail-seed drives corrupt-fault byte flips.  Runs
// with a plan end with a "failpoints" coverage line (emitted even when an
// injected crash kills the run).  Exit 4 = killed by an injected crash;
// rerun without the plan to resume from the surviving checkpoint.
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string_view>

#include "failpoint/fail_plan.h"
#include "failpoint/fs.h"
#include "fault/fault_plan.h"
#include "resilience/resilient_trials.h"

#include "channel/burst.h"
#include "channel/collision.h"
#include "channel/correlated.h"
#include "channel/independent.h"
#include "channel/noiseless.h"
#include "channel/one_sided.h"
#include "coding/hierarchical_sim.h"
#include "coding/repetition_sim.h"
#include "coding/rewind_sim.h"
#include "tasks/adaptive_find.h"
#include "tasks/bit_exchange.h"
#include "tasks/counting.h"
#include "tasks/input_set.h"
#include "tasks/leader_election.h"
#include "tasks/or_vector.h"
#include "tasks/random_protocol.h"
#include "util/flags.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;

struct Workload {
  std::unique_ptr<Protocol> protocol;
  std::function<bool(const SimulationResult&)> judge;
};

Workload MakeWorkload(const std::string& task, int n, Rng& rng) {
  if (task == "input_set") {
    auto instance = std::make_shared<InputSetInstance>(SampleInputSet(n, rng));
    Workload w;
    w.protocol = MakeInputSetProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return InputSetAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "bit_exchange") {
    auto instance =
        std::make_shared<BitExchangeInstance>(SampleBitExchange(n, 8, rng));
    Workload w;
    w.protocol = MakeBitExchangeProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return BitExchangeAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "leader") {
    auto instance = std::make_shared<LeaderElectionInstance>(
        SampleLeaderElection(n, 12, rng));
    Workload w;
    w.protocol = MakeLeaderElectionProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return LeaderElectionAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "counting") {
    auto instance =
        std::make_shared<CountingInstance>(SampleCounting(n, 8, 9, rng));
    Workload w;
    w.protocol = MakeCountingProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return CountingAllWithinFactor(*instance, r.outputs, 8.0);
    };
    return w;
  }
  if (task == "adaptive") {
    auto instance = std::make_shared<AdaptiveFindInstance>(
        SampleAdaptiveFind(n, 0.2, rng));
    Workload w;
    w.protocol = MakeAdaptiveFindProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return AdaptiveFindAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "or_vector") {
    auto instance =
        std::make_shared<OrVectorInstance>(SampleOrVector(n, 2 * n, 0.1, rng));
    Workload w;
    w.protocol = MakeOrVectorProtocol(*instance);
    w.judge = [instance](const SimulationResult& r) {
      return OrVectorAllCorrect(*instance, r.outputs);
    };
    return w;
  }
  if (task == "random") {
    auto spec = std::make_shared<RandomProtocolSpec>(
        SampleRandomProtocol(n, 4 * n, 0.1, /*adaptive=*/true, rng));
    Workload w;
    w.protocol = MakeRandomProtocol(*spec);
    const std::uint64_t expected =
        TranscriptDigest(ReferenceTranscript(*w.protocol));
    w.judge = [expected](const SimulationResult& r) {
      for (const PartyOutput& out : r.outputs) {
        if (out.size() != 1 || out[0] != expected) return false;
      }
      return true;
    };
    return w;
  }
  throw std::invalid_argument("unknown --task: " + task);
}

std::unique_ptr<Channel> MakeChannel(const std::string& channel, double eps) {
  if (channel == "noiseless") return std::make_unique<NoiselessChannel>();
  if (channel == "correlated") {
    return std::make_unique<CorrelatedNoisyChannel>(eps);
  }
  if (channel == "up") return std::make_unique<OneSidedUpChannel>(eps);
  if (channel == "down") return std::make_unique<OneSidedDownChannel>(eps);
  if (channel == "independent") {
    return std::make_unique<IndependentNoisyChannel>(eps);
  }
  if (channel == "burst") {
    // A quiet floor (eps/10) punctuated by 0.4-rate bursts of mean length
    // ~7 rounds entered at rate eps/10: stationary noise stays near eps/3
    // but arrives clustered.
    return std::make_unique<BurstNoisyChannel>(eps / 10, 0.4, eps / 10, 0.15);
  }
  if (channel == "collision") {
    return std::make_unique<CollisionAsSilenceChannel>(eps);
  }
  throw std::invalid_argument("unknown --channel: " + channel);
}

std::unique_ptr<Simulator> MakeSimulator(const std::string& sim,
                                         const std::string& task, int n) {
  if (sim == "scheduled") {
    if (task != "bit_exchange") {
      throw std::invalid_argument(
          "--sim=scheduled requires --task=bit_exchange (the built-in "
          "schedule-owned workload)");
    }
    return std::make_unique<RewindSimulator>(
        RewindSimOptions::Scheduled(BitExchangeSchedule(n, 8)));
  }
  if (sim == "raw") {
    return std::make_unique<RepetitionSimulator>(
        RepetitionSimOptions{.rep_factor = 1});
  }
  if (sim == "repetition") return std::make_unique<RepetitionSimulator>();
  if (sim == "rewind") return std::make_unique<RewindSimulator>();
  if (sim == "rewind_down") {
    return std::make_unique<RewindSimulator>(RewindSimOptions::DownOnly());
  }
  if (sim == "hierarchical") return std::make_unique<HierarchicalSimulator>();
  if (sim == "hierarchical_down") {
    return std::make_unique<HierarchicalSimulator>(
        HierarchicalSimOptions::DownOnly());
  }
  throw std::invalid_argument("unknown --sim: " + sim);
}

// One trial's distilled outcome: everything the end-of-run aggregation
// needs, in a form the checkpoint codec can round-trip byte-exactly.
struct TrialPoint {
  bool success = false;
  std::uint8_t status = 0;  // SimulationStatus as a wire byte
  std::int64_t rounds = 0;
  double blowup = 0;
  std::map<std::string, std::int64_t> phases;
};

struct TrialPointAdapter {
  [[nodiscard]] std::string Encode(const TrialPoint& p) const {
    std::string out;
    resilience::AppendU64(out, p.success ? 1 : 0);
    resilience::AppendU64(out, p.status);
    resilience::AppendU64(out, static_cast<std::uint64_t>(p.rounds));
    resilience::AppendF64(out, p.blowup);
    resilience::AppendU64(out, p.phases.size());
    for (const auto& [phase, count] : p.phases) {
      resilience::AppendBytes(out, phase);
      resilience::AppendU64(out, static_cast<std::uint64_t>(count));
    }
    return out;
  }
  [[nodiscard]] TrialPoint Decode(std::string_view bytes) const {
    resilience::ByteReader reader(bytes);
    TrialPoint p;
    p.success = reader.U64() != 0;
    p.status = static_cast<std::uint8_t>(reader.U64());
    p.rounds = static_cast<std::int64_t>(reader.U64());
    p.blowup = reader.F64();
    const std::uint64_t num_phases = reader.U64();
    for (std::uint64_t i = 0; i < num_phases; ++i) {
      const std::string phase(reader.Bytes());
      p.phases[phase] = static_cast<std::int64_t>(reader.U64());
    }
    if (!reader.AtEnd()) {
      throw resilience::CheckpointError("trailing bytes in trial payload");
    }
    return p;
  }
  [[nodiscard]] resilience::TrialAssessment Assess(const TrialPoint& p) const {
    resilience::TrialAssessment assessment;
    // The graceful-degradation ladder maps directly: a kFailed simulation
    // verdict is retried (with --max-attempts > 1), kDegraded is kept as
    // a reportable outcome.  The task-level judge does NOT drive retries:
    // an unlucky-noise failure is a legitimate sample, not a transient.
    if (p.status == 2) assessment.verdict = resilience::TrialVerdict::kFailed;
    assessment.rounds_used = p.rounds;
    return assessment;
  }
};

FaultPlan MakeFaultPlan(const std::string& text, std::uint64_t fault_seed) {
  if (text.empty()) return FaultPlan();
  if (text.front() == '@') {
    std::ifstream file(text.substr(1));
    if (!file) {
      throw std::invalid_argument("--fault-plan: cannot open " +
                                  text.substr(1));
    }
    return ReadFaultPlanCsv(file, fault_seed);
  }
  return FaultPlan::Parse(text, fault_seed);
}

failpoint::FailPlan MakeFailPlan(const std::string& text,
                                 std::uint64_t fail_seed) {
  if (text.empty()) return failpoint::FailPlan();
  if (text.front() == '@') {
    std::ifstream file(text.substr(1));
    if (!file) {
      throw std::invalid_argument("--fail-plan: cannot open " +
                                  text.substr(1));
    }
    return failpoint::ReadFailPlanCsv(file, fail_seed);
  }
  return failpoint::FailPlan::Parse(text, fail_seed);
}

// The chaos-soak coverage line: which fail-plan specs actually injected.
// tools/fault_soak.sh asserts specs_fired=X/Y has X == Y, so a plan that
// never bites cannot pass as "tested".
void PrintFailpoints(const failpoint::FaultingFs& fs) {
  if (fs.plan().empty()) return;
  std::int64_t fired = 0;
  for (const std::int64_t f : fs.SpecFires()) {
    if (f > 0) ++fired;
  }
  std::printf("  failpoints plan=%s seed=%llu specs_fired=%lld/%zu "
              "injected=%lld latency_ms=%lld\n",
              fs.plan().ToString().c_str(),
              static_cast<unsigned long long>(fs.plan().seed()),
              static_cast<long long>(fired), fs.plan().specs().size(),
              static_cast<long long>(fs.TotalInjected()),
              static_cast<long long>(fs.InjectedLatencyMillis()));
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::puts(
        "nbsim --task=<task> --channel=<channel> --sim=<sim> [--n N]\n"
        "      [--eps E] [--trials K] [--seed S] [--csv]\n"
        "      [--fault-plan=PLAN|@file.csv] [--fault-seed S]\n"
        "      [--fail-plan=PLAN|@file.csv] [--fail-seed S]\n"
        "      [--checkpoint=PATH] [--checkpoint-every K] [--halt-after N]\n"
        "      [--workers W] [--max-attempts A] [--retry-backoff-ms B]\n"
        "      [--trial-round-budget R] [--trial-timeout-ms T]\n"
        "tasks: input_set bit_exchange leader counting adaptive or_vector "
        "random\n"
        "channels: noiseless correlated up down independent burst collision\n"
        "sims: raw repetition rewind rewind_down hierarchical "
        "hierarchical_down scheduled (bit_exchange only)\n"
        "fault plan grammar: kind:party@first[-last][:prob] joined by ';'\n"
        "  kinds: crash sleepy stuck babble deaf (see docs/FAULTS.md)\n"
        "fail plan grammar: kind:op@first[-last][:param] joined by ';'\n"
        "  kinds: fail enospc torn crash truncate corrupt latency; ops:\n"
        "  read write sync rename remove (checkpoint I/O faults, see\n"
        "  docs/RESILIENCE.md); exit 4 = killed by an injected crash\n"
        "resilience: a killed checkpointed run resumes bit-identically at\n"
        "  any --workers count (docs/RESILIENCE.md); exit 3 = halted at a\n"
        "  checkpoint via --halt-after");
    return 0;
  }
  const std::string task = flags.GetString("task", "input_set");
  const std::string channel_name = flags.GetString("channel", "correlated");
  const std::string sim_name = flags.GetString("sim", "rewind");
  const int n = static_cast<int>(flags.GetInt("n", 16));
  const double eps = flags.GetDouble("eps", 0.05);
  const int trials = static_cast<int>(flags.GetInt("trials", 10));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const bool csv = flags.GetBool("csv", false);
  const std::string fault_plan_text = flags.GetString("fault-plan", "");
  const std::uint64_t fault_seed =
      static_cast<std::uint64_t>(flags.GetInt("fault-seed", 0));
  const std::string fail_plan_text = flags.GetString("fail-plan", "");
  const std::uint64_t fail_seed =
      static_cast<std::uint64_t>(flags.GetInt("fail-seed", 0));
  const std::string checkpoint_path = flags.GetString("checkpoint", "");
  const int checkpoint_every =
      static_cast<int>(flags.GetInt("checkpoint-every", 5));
  const int halt_after = static_cast<int>(flags.GetInt("halt-after", 0));
  const int workers = static_cast<int>(flags.GetInt("workers", 0));
  const int max_attempts = static_cast<int>(flags.GetInt("max-attempts", 1));
  const std::int64_t retry_backoff_ms = flags.GetInt("retry-backoff-ms", 0);
  const std::int64_t trial_round_budget =
      flags.GetInt("trial-round-budget", 0);
  const std::int64_t trial_timeout_ms = flags.GetInt("trial-timeout-ms", 0);
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::cerr << "unknown flag: --" << unknown << " (try --help)\n";
    return 2;
  }

  const FaultPlan faults = MakeFaultPlan(fault_plan_text, fault_seed);
  if (faults.MaxParty() >= n) {
    std::cerr << "nbsim: --fault-plan names party " << faults.MaxParty()
              << " but --n=" << n << "\n";
    return 2;
  }
  const std::unique_ptr<Channel> channel = MakeChannel(channel_name, eps);
  const std::unique_ptr<Simulator> sim = MakeSimulator(sim_name, task, n);

  // The configuration hash guards --checkpoint resumes: a checkpoint is
  // only resumed under the exact workload that wrote it (seed and trial
  // count are checked separately, from the parent Rng state).
  std::ostringstream config;
  config << "task=" << task << "|channel=" << channel_name
         << "|sim=" << sim_name << "|n=" << n << "|eps="
         << noisybeeps::FormatDouble(eps)
         << "|faults=" << faults.ToString() << "|fault_seed=" << fault_seed
         << "|max_attempts=" << max_attempts
         << "|round_budget=" << trial_round_budget
         << "|timeout_ms=" << trial_timeout_ms
         << "|backoff_ms=" << retry_backoff_ms;

  // Checkpoint I/O chaos: every run goes through a FaultingFs (an empty
  // plan is a pure pass-through).  The fail plan is deliberately NOT part
  // of the config hash -- a run killed by an injected crash must be
  // resumable WITHOUT the plan, and its fingerprint comparable to a clean
  // run's.
  failpoint::FaultingFs fault_fs(failpoint::RealFs::Instance(),
                                 MakeFailPlan(fail_plan_text, fail_seed));

  resilience::ResilienceOptions opts;
  opts.fs = &fault_fs;
  opts.checkpoint_path = checkpoint_path;
  opts.checkpoint_every = checkpoint_every;
  opts.config_hash = resilience::Fnv1a64(config.str());
  opts.retry.max_attempts = max_attempts;
  opts.retry.base_backoff_millis = retry_backoff_ms;
  opts.budget.max_rounds = trial_round_budget;
  opts.budget.max_wall_millis = trial_timeout_ms;
  opts.num_workers = workers;
  opts.halt_after_checkpoints = halt_after;

  Rng rng(seed);
  const auto body = [&](int, Rng& trial_rng) {
    const Workload workload = MakeWorkload(task, n, trial_rng);
    const SimulationResult result =
        sim->Simulate(*workload.protocol, *channel, faults, trial_rng);
    TrialPoint point;
    point.success = !result.budget_exhausted() && workload.judge(result);
    point.status = static_cast<std::uint8_t>(result.verdict.status);
    point.rounds = result.noisy_rounds_used;
    point.blowup = static_cast<double>(result.noisy_rounds_used) /
                   std::max(1, workload.protocol->length());
    for (const auto& [phase, count] : result.phase_rounds) {
      point.phases[phase] += count;
    }
    return point;
  };
  const TrialPointAdapter adapter;
  std::optional<resilience::RunOutput<TrialPoint>> completed;
  try {
    completed.emplace(
        resilience::ResilientTrials(trials, rng, body, adapter, opts));
  } catch (const failpoint::InjectedCrash& e) {
    // The simulated SIGKILL: report which failpoints fired (the chaos
    // soak's coverage assertion reads this line even for killed runs),
    // then die with the dedicated exit code.
    PrintFailpoints(fault_fs);
    std::cerr << "nbsim: killed by failpoint: " << e.what() << "\n";
    return 4;
  }
  const resilience::RunOutput<TrialPoint>& run = *completed;

  SuccessCounter counter;
  RunningStat rounds;
  RunningStat blowup;
  std::map<std::string, std::int64_t> phases;
  int verdicts[3] = {0, 0, 0};  // kOk, kDegraded, kFailed
  std::string encoded_results;
  for (const TrialPoint& point : run.results) {
    counter.Record(point.success);
    ++verdicts[point.status < 3 ? point.status : 2];
    rounds.Add(static_cast<double>(point.rounds));
    blowup.Add(point.blowup);
    for (const auto& [phase, count] : point.phases) phases[phase] += count;
    encoded_results += adapter.Encode(point);
  }
  // Bit-stable across every interrupt/resume schedule and worker count;
  // tools/fault_soak.sh compares this between clean and resumed runs.
  const std::uint64_t results_fingerprint =
      resilience::Fnv1a64(encoded_results);

  const WilsonInterval ci = counter.interval();
  if (csv) {
    std::printf(
        "task,channel,sim,n,eps,trials,success_rate,ci_low,ci_high,"
        "mean_rounds,mean_blowup,fault_plan,ok,degraded,failed,"
        "completed,retried,abandoned,attempts,timeouts,exceptions,"
        "degraded_verdicts,resumed,checkpoints,quarantined,write_failures,"
        "fingerprint\n");
    std::printf(
        "%s,%s,%s,%d,%g,%d,%.4f,%.4f,%.4f,%.1f,%.2f,%s,%d,%d,%d,"
        "%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%016llx\n",
        task.c_str(), channel_name.c_str(), sim_name.c_str(), n, eps,
        trials, counter.rate(), ci.low, ci.high, rounds.mean(),
        blowup.mean(), faults.ToString().c_str(), verdicts[0], verdicts[1],
        verdicts[2], static_cast<long long>(run.report.completed),
        static_cast<long long>(run.report.retried),
        static_cast<long long>(run.report.abandoned),
        static_cast<long long>(run.report.attempts),
        static_cast<long long>(run.report.timeouts),
        static_cast<long long>(run.report.exceptions),
        static_cast<long long>(run.report.degraded_verdicts),
        static_cast<long long>(run.report.resumed_trials),
        static_cast<long long>(run.report.checkpoints_written),
        static_cast<long long>(run.report.checkpoints_quarantined),
        static_cast<long long>(run.report.checkpoint_write_failures),
        static_cast<unsigned long long>(results_fingerprint));
  } else {
    std::printf("task=%s channel=%s sim=%s n=%d eps=%g trials=%d\n",
                task.c_str(), channel->name().c_str(), sim->name().c_str(),
                n, eps, trials);
    if (!faults.empty()) {
      std::printf("  faults   %s (seed %llu)\n", faults.ToString().c_str(),
                  static_cast<unsigned long long>(faults.seed()));
    }
    std::printf("  success  %5.1f%%  (95%% CI [%.1f%%, %.1f%%])\n",
                100 * counter.rate(), 100 * ci.low, 100 * ci.high);
    std::printf("  verdicts ok=%d degraded=%d failed=%d\n", verdicts[0],
                verdicts[1], verdicts[2]);
    std::printf("  rounds   %.1f mean  (blowup %.2fx)\n", rounds.mean(),
                blowup.mean());
    if (!phases.empty()) {
      std::printf("  phases  ");
      double total = 0;
      for (const auto& [phase, count] : phases) total += count;
      for (const auto& [phase, count] : phases) {
        std::printf(" %s=%.0f%%", phase.empty() ? "other" : phase.c_str(),
                    100.0 * count / total);
      }
      std::printf("\n");
    }
    std::printf("  resilience %s\n",
                resilience::FormatRunReport(run.report).c_str());
    PrintFailpoints(fault_fs);
    std::printf("  fingerprint %016llx\n",
                static_cast<unsigned long long>(results_fingerprint));
  }
  return counter.rate() > 0.5 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const noisybeeps::resilience::RunInterrupted& e) {
    // The deterministic kill (--halt-after): the checkpoint on disk is
    // complete; rerunning with the same --checkpoint resumes the sweep.
    std::cerr << "nbsim: interrupted: " << e.what() << "\n";
    return 3;
  } catch (const noisybeeps::failpoint::InjectedCrash& e) {
    // Backstop for injected crashes outside the trial loop (Run() already
    // handles the common path and prints failpoint coverage first).
    std::cerr << "nbsim: killed by failpoint: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "nbsim: " << e.what() << "\n";
    return 2;
  }
}
