// nbsim: the command-line driver for the noisybeeps library.
//
// Runs any built-in workload over any channel under any simulator, many
// trials, and reports success rate, round cost, blowup, and the per-phase
// round breakdown -- as a human-readable summary or CSV.
//
//   nbsim --task=input_set --channel=correlated --eps=0.05
//         --sim=rewind --n=32 --trials=20 --seed=1 [--csv]
//
// Tasks:    input_set | bit_exchange | leader | counting | adaptive |
//           or_vector | random
// Channels: noiseless | correlated | up | down | independent | burst
// Sims:     raw | repetition | rewind | rewind_down | hierarchical |
//           hierarchical_down
//
// Since PR 8 nbsim is a thin front-end over the service workload layer
// (src/service/workload.h): flags build a service::JobSpec, the trial
// loop is service::RunJob, and the exact same execution path serves
// nbserved requests.  This file only parses flags, expands @file plans,
// and formats output.
//
// Party faults (docs/FAULTS.md): --fault-plan takes the compact grammar
// ("crash:3@100;babble:2@0-50:0.7") or @path/to/plan.csv; --fault-seed
// drives the babbler streams.  Faulted runs additionally report the
// ok/degraded/failed verdict breakdown.
//
// Resilience (docs/RESILIENCE.md): trials run through ResilientTrials, so
// a sweep can checkpoint (--checkpoint run.nbckpt --checkpoint-every K),
// be killed, and resume bit-identically at any --workers count; hung
// trials are cut off by --trial-round-budget / --trial-timeout-ms, and
// transient failures retried with --max-attempts.  Every run ends with a
// RunReport line and a results fingerprint (identical across any
// interrupt/resume schedule).  Exit 3 = interrupted via --halt-after (the
// deterministic kill used by tools/fault_soak.sh).
//
// I/O chaos (docs/RESILIENCE.md): --fail-plan injects deterministic
// checkpoint-I/O faults through the failpoint::Fs seam, using the grammar
// in src/failpoint/fail_plan.h ("crash:write@1;corrupt:read@0:4") or
// @path/to/plan.csv; --fail-seed drives corrupt-fault byte flips.  Runs
// with a plan end with a "failpoints" coverage line (emitted even when an
// injected crash kills the run).  Exit 4 = killed by an injected crash;
// rerun with the SAME plan and seed to resume from the surviving
// checkpoint -- the fail plan is part of the checkpoint's config hash, so
// a chaos run and a clean run never silently share checkpoints.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "failpoint/fail_plan.h"
#include "failpoint/fs.h"
#include "fault/fault_plan.h"
#include "resilience/resilient_trials.h"
#include "service/job_spec.h"
#include "service/workload.h"
#include "util/flags.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;

// Expands "@path/to/plan.csv" to the compact fault-plan grammar (the
// JobSpec carries plan TEXT, so file indirection is resolved here, in the
// front-end, before the spec is built).
std::string ExpandFaultPlan(const std::string& text, std::uint64_t seed) {
  if (text.empty() || text.front() != '@') return text;
  std::ifstream file(text.substr(1));
  if (!file) {
    throw std::invalid_argument("--fault-plan: cannot open " + text.substr(1));
  }
  return ReadFaultPlanCsv(file, seed).ToString();
}

std::string ExpandFailPlan(const std::string& text, std::uint64_t seed) {
  if (text.empty() || text.front() != '@') return text;
  std::ifstream file(text.substr(1));
  if (!file) {
    throw std::invalid_argument("--fail-plan: cannot open " + text.substr(1));
  }
  return failpoint::ReadFailPlanCsv(file, seed).ToString();
}

// The chaos-soak coverage line: which fail-plan specs actually injected.
// tools/fault_soak.sh asserts specs_fired=X/Y has X == Y, so a plan that
// never bites cannot pass as "tested".
void PrintFailpoints(const failpoint::FaultingFs& fs) {
  if (fs.plan().empty()) return;
  std::int64_t fired = 0;
  for (const std::int64_t f : fs.SpecFires()) {
    if (f > 0) ++fired;
  }
  std::printf("  failpoints plan=%s seed=%llu specs_fired=%lld/%zu "
              "injected=%lld latency_ms=%lld\n",
              fs.plan().ToString().c_str(),
              static_cast<unsigned long long>(fs.plan().seed()),
              static_cast<long long>(fired), fs.plan().specs().size(),
              static_cast<long long>(fs.TotalInjected()),
              static_cast<long long>(fs.InjectedLatencyMillis()));
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::puts(
        "nbsim --task=<task> --channel=<channel> --sim=<sim> [--n N]\n"
        "      [--eps E] [--trials K] [--seed S] [--csv]\n"
        "      [--fault-plan=PLAN|@file.csv] [--fault-seed S]\n"
        "      [--fail-plan=PLAN|@file.csv] [--fail-seed S]\n"
        "      [--checkpoint=PATH] [--checkpoint-every K] [--halt-after N]\n"
        "      [--workers W] [--max-attempts A] [--retry-backoff-ms B]\n"
        "      [--trial-round-budget R] [--trial-timeout-ms T]\n"
        "tasks: input_set bit_exchange leader counting adaptive or_vector "
        "random\n"
        "channels: noiseless correlated up down independent burst collision\n"
        "sims: raw repetition rewind rewind_down hierarchical "
        "hierarchical_down scheduled (bit_exchange only)\n"
        "fault plan grammar: kind:party@first[-last][:prob] joined by ';'\n"
        "  kinds: crash sleepy stuck babble deaf (see docs/FAULTS.md)\n"
        "fail plan grammar: kind:op@first[-last][:param] joined by ';'\n"
        "  kinds: fail enospc torn crash truncate corrupt latency; ops:\n"
        "  read write sync rename remove (checkpoint I/O faults, see\n"
        "  docs/RESILIENCE.md); exit 4 = killed by an injected crash\n"
        "resilience: a killed checkpointed run resumes bit-identically at\n"
        "  any --workers count (docs/RESILIENCE.md); exit 3 = halted at a\n"
        "  checkpoint via --halt-after.  The fail plan is part of the\n"
        "  checkpoint config hash: resume a chaos run with the same plan");
    return 0;
  }
  service::JobSpec spec;
  spec.task = flags.GetString("task", "input_set");
  spec.channel = flags.GetString("channel", "correlated");
  spec.sim = flags.GetString("sim", "rewind");
  spec.n = flags.GetInt("n", 16);
  spec.eps = flags.GetDouble("eps", 0.05);
  spec.trials = static_cast<int>(flags.GetInt("trials", 10));
  spec.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const bool csv = flags.GetBool("csv", false);
  spec.fault_seed = static_cast<std::uint64_t>(flags.GetInt("fault-seed", 0));
  spec.fault_plan =
      ExpandFaultPlan(flags.GetString("fault-plan", ""), spec.fault_seed);
  spec.fail_seed = static_cast<std::uint64_t>(flags.GetInt("fail-seed", 0));
  spec.fail_plan =
      ExpandFailPlan(flags.GetString("fail-plan", ""), spec.fail_seed);
  spec.max_attempts = static_cast<int>(flags.GetInt("max-attempts", 1));
  spec.retry_backoff_millis = flags.GetInt("retry-backoff-ms", 0);
  spec.trial_round_budget = flags.GetInt("trial-round-budget", 0);
  spec.trial_timeout_millis = flags.GetInt("trial-timeout-ms", 0);

  service::JobExecution exec;
  exec.checkpoint_path = flags.GetString("checkpoint", "");
  exec.checkpoint_every = static_cast<int>(flags.GetInt("checkpoint-every", 5));
  exec.halt_after_checkpoints = static_cast<int>(flags.GetInt("halt-after", 0));
  exec.num_workers = static_cast<int>(flags.GetInt("workers", 0));
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    std::cerr << "unknown flag: --" << unknown << " (try --help)\n";
    return 2;
  }

  // Checkpoint I/O chaos: every run goes through a FaultingFs (an empty
  // plan is a pure pass-through).  The plan is part of the config hash
  // (via JobSpec::ConfigHash), so a killed chaos run resumes only under
  // the same plan -- and can never poison a clean run's checkpoint.
  failpoint::FaultingFs fault_fs(failpoint::RealFs::Instance(),
                                 spec.ParsedFailPlan());
  exec.fs = &fault_fs;

  std::optional<service::JobResult> completed;
  try {
    completed.emplace(service::RunJob(spec, exec));
  } catch (const failpoint::InjectedCrash& e) {
    // The simulated SIGKILL: report which failpoints fired (the chaos
    // soak's coverage assertion reads this line even for killed runs),
    // then die with the dedicated exit code.
    PrintFailpoints(fault_fs);
    std::cerr << "nbsim: killed by failpoint: " << e.what() << "\n";
    return 4;
  }
  const service::JobResult& result = *completed;

  const double rate =
      result.trials > 0
          ? static_cast<double>(result.successes) /
                static_cast<double>(result.trials)
          : 0.0;
  // Zero trials carry no data: the vacuous [0, 1], as SuccessCounter does.
  const WilsonInterval ci =
      result.trials > 0
          ? WilsonScoreInterval(static_cast<std::size_t>(result.successes),
                                static_cast<std::size_t>(result.trials))
          : WilsonInterval{0.0, 1.0};
  const FaultPlan faults = spec.ParsedFaultPlan();
  if (csv) {
    std::printf(
        "task,channel,sim,n,eps,trials,success_rate,ci_low,ci_high,"
        "mean_rounds,mean_blowup,fault_plan,ok,degraded,failed,"
        "completed,retried,abandoned,attempts,timeouts,exceptions,"
        "degraded_verdicts,resumed,checkpoints,quarantined,write_failures,"
        "fingerprint\n");
    std::printf(
        "%s,%s,%s,%lld,%g,%d,%.4f,%.4f,%.4f,%.1f,%.2f,%s,%lld,%lld,%lld,"
        "%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%lld,%016llx\n",
        spec.task.c_str(), spec.channel.c_str(), spec.sim.c_str(),
        static_cast<long long>(spec.n),
        spec.eps, spec.trials, rate, ci.low, ci.high, result.mean_rounds,
        result.mean_blowup, faults.ToString().c_str(),
        static_cast<long long>(result.verdicts[0]),
        static_cast<long long>(result.verdicts[1]),
        static_cast<long long>(result.verdicts[2]),
        static_cast<long long>(result.report.completed),
        static_cast<long long>(result.report.retried),
        static_cast<long long>(result.report.abandoned),
        static_cast<long long>(result.report.attempts),
        static_cast<long long>(result.report.timeouts),
        static_cast<long long>(result.report.exceptions),
        static_cast<long long>(result.report.degraded_verdicts),
        static_cast<long long>(result.report.resumed_trials),
        static_cast<long long>(result.report.checkpoints_written),
        static_cast<long long>(result.report.checkpoints_quarantined),
        static_cast<long long>(result.report.checkpoint_write_failures),
        static_cast<unsigned long long>(result.results_fingerprint));
  } else {
    std::printf("task=%s channel=%s sim=%s n=%lld eps=%g trials=%d\n",
                spec.task.c_str(), spec.channel.c_str(), spec.sim.c_str(),
                static_cast<long long>(spec.n), spec.eps, spec.trials);
    if (!faults.empty()) {
      std::printf("  faults   %s (seed %llu)\n", faults.ToString().c_str(),
                  static_cast<unsigned long long>(faults.seed()));
    }
    std::printf("  success  %5.1f%%  (95%% CI [%.1f%%, %.1f%%])\n",
                100 * rate, 100 * ci.low, 100 * ci.high);
    std::printf("  verdicts ok=%lld degraded=%lld failed=%lld\n",
                static_cast<long long>(result.verdicts[0]),
                static_cast<long long>(result.verdicts[1]),
                static_cast<long long>(result.verdicts[2]));
    std::printf("  rounds   %.1f mean  (blowup %.2fx)\n", result.mean_rounds,
                result.mean_blowup);
    if (!result.phases.empty()) {
      std::printf("  phases  ");
      double total = 0;
      for (const auto& [phase, count] : result.phases) {
        total += static_cast<double>(count);
      }
      for (const auto& [phase, count] : result.phases) {
        std::printf(" %s=%.0f%%", phase.empty() ? "other" : phase.c_str(),
                    100.0 * static_cast<double>(count) / total);
      }
      std::printf("\n");
    }
    std::printf("  resilience %s\n",
                resilience::FormatRunReport(result.report).c_str());
    PrintFailpoints(fault_fs);
    std::printf("  fingerprint %016llx\n",
                static_cast<unsigned long long>(result.results_fingerprint));
  }
  return rate > 0.5 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const noisybeeps::resilience::RunInterrupted& e) {
    // The deterministic kill (--halt-after): the checkpoint on disk is
    // complete; rerunning with the same --checkpoint resumes the sweep.
    std::cerr << "nbsim: interrupted: " << e.what() << "\n";
    return 3;
  } catch (const noisybeeps::failpoint::InjectedCrash& e) {
    // Backstop for injected crashes outside the trial loop (Run() already
    // handles the common path and prints failpoint coverage first).
    std::cerr << "nbsim: killed by failpoint: " << e.what() << "\n";
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "nbsim: " << e.what() << "\n";
    return 2;
  }
}
