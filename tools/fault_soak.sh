#!/usr/bin/env bash
# Seeded soak for the simulation stack, in two parts:
#
#   faults  -- drive nbsim over a fixed seed x fault-plan matrix under
#              whatever sanitizer the caller built with.  A faulted run may
#              legitimately lose (exit 1: success rate <= 50% when parties
#              misbehave), so both 0 and 1 are accepted; what the soak
#              catches is sanitizer reports (nonzero beyond 1), crashes,
#              and hangs (the strict per-run timeout).
#   resume  -- kill-and-resume reproducibility: for each workload, run
#              once uninterrupted, then run with checkpointing and
#              --halt-after so the process dies mid-sweep (exit 3), then
#              resume from the checkpoint at a DIFFERENT worker count.
#              The resumed run must report the exact fingerprint of the
#              uninterrupted one; any divergence fails loudly.
#
# Usage: tools/fault_soak.sh <path-to-nbsim> [faults|resume|all]
set -u

nbsim="${1:?usage: fault_soak.sh <path-to-nbsim> [faults|resume|all]}"
mode="${2:-all}"
timeout_s=120
failures=0

run_faults() {
  local plans=(
    'crash:1@200'
    'sleepy:0@100-400;sleepy:1@150-450'
    'stuck:2@50-90'
    'babble:3@0-500:0.3'
    'deaf:0@0-*'
    'crash:1@300;babble:2@0-200:0.5;deaf:3@0-*'
  )
  for seed in 1 2 3; do
    for plan in "${plans[@]}"; do
      for sim in repetition rewind hierarchical; do
        local cmd=("$nbsim" --task=input_set --channel=correlated --eps=0.05
                   --sim="$sim" --n=8 --trials=3 --seed="$seed"
                   --fault-plan="$plan" --fault-seed="$seed")
        timeout "$timeout_s" "${cmd[@]}" > /dev/null
        local rc=$?
        if [ "$rc" -gt 1 ]; then
          echo "FAULT-SOAK FAILURE (rc=$rc): ${cmd[*]}"
          failures=$((failures + 1))
        fi
      done
    done
  done
}

# Prints the "fingerprint" field of an nbsim human-format run.
fingerprint_of() {
  awk '/^  fingerprint / { print $2 }'
}

# One kill-and-resume round trip.  Arguments: a label followed by the
# workload's nbsim flags.  Clean run at 1 worker; interrupted run at 2
# workers; resume at 4 workers -- the fingerprints must all agree.
check_resume() {
  local label="$1"; shift
  local ckpt
  ckpt="$(mktemp -t nbsoak.XXXXXX.nbckpt)"
  rm -f "$ckpt"  # nbsim must see a fresh path, not an empty file

  local clean interrupted resumed rc
  clean="$(timeout "$timeout_s" "$nbsim" "$@" --workers=1 \
             | fingerprint_of)"
  if [ -z "$clean" ]; then
    echo "RESUME-SOAK FAILURE ($label): clean run produced no fingerprint"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi

  timeout "$timeout_s" "$nbsim" "$@" --workers=2 \
      --checkpoint="$ckpt" --checkpoint-every=2 --halt-after=1 > /dev/null
  rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "RESUME-SOAK FAILURE ($label): expected interrupt exit 3, got $rc"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  if [ ! -s "$ckpt" ]; then
    echo "RESUME-SOAK FAILURE ($label): interrupt left no checkpoint"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  if [ -e "$ckpt.tmp" ]; then
    echo "RESUME-SOAK FAILURE ($label): torn temp file $ckpt.tmp left behind"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi

  resumed="$(timeout "$timeout_s" "$nbsim" "$@" --workers=4 \
               --checkpoint="$ckpt" --checkpoint-every=2 | fingerprint_of)"
  if [ "$resumed" != "$clean" ]; then
    echo "RESUME-SOAK FAILURE ($label): resumed fingerprint $resumed" \
         "diverges from uninterrupted $clean"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  echo "resume soak: $label fingerprint $clean reproduced"
  rm -f "$ckpt" "$ckpt.tmp"
}

run_resume() {
  check_resume "repetition/correlated" \
      --task=input_set --channel=correlated --eps=0.05 --sim=repetition \
      --n=8 --trials=9 --seed=11
  check_resume "hierarchical/correlated" \
      --task=input_set --channel=correlated --eps=0.05 --sim=hierarchical \
      --n=6 --trials=8 --seed=12
  check_resume "rewind/faulted/retries" \
      --task=input_set --channel=correlated --eps=0.05 --sim=rewind \
      --n=8 --trials=8 --seed=13 --fault-plan='babble:3@0-200:0.3' \
      --fault-seed=13 --max-attempts=2 --trial-round-budget=200000
}

case "$mode" in
  faults) run_faults ;;
  resume) run_resume ;;
  all) run_faults; run_resume ;;
  *) echo "unknown mode '$mode' (want faults|resume|all)"; exit 2 ;;
esac

if [ "$failures" -gt 0 ]; then
  echo "fault soak: $failures failing configuration(s)"
  exit 1
fi
echo "fault soak ($mode): all configurations clean"
