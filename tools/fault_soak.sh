#!/usr/bin/env bash
# Seeded soak for the simulation stack, in two parts:
#
#   faults  -- drive nbsim over a fixed seed x fault-plan matrix under
#              whatever sanitizer the caller built with.  A faulted run may
#              legitimately lose (exit 1: success rate <= 50% when parties
#              misbehave), so both 0 and 1 are accepted; what the soak
#              catches is sanitizer reports (nonzero beyond 1), crashes,
#              and hangs (the strict per-run timeout).
#   resume  -- kill-and-resume reproducibility: for each workload, run
#              once uninterrupted, then run with checkpointing and
#              --halt-after so the process dies mid-sweep (exit 3), then
#              resume from the checkpoint at a DIFFERENT worker count.
#              The resumed run must report the exact fingerprint of the
#              uninterrupted one; any divergence fails loudly.
#   chaos   -- checkpoint-I/O fault injection through the failpoint::Fs
#              seam (--fail-plan, docs/RESILIENCE.md).  The fail plan is
#              part of the checkpoint's config hash, so every stage of a
#              chaos round trip runs under the SAME plan and seed.
#              Degrade plans (failed/short writes, failed renames,
#              truncated/corrupt/unreadable reads, latency) must halt or
#              complete and then resume to the clean run's exact
#              fingerprint; crash plans (injected kill mid-protocol,
#              exit 4) are resumed under the same plan again and again
#              until the run outlives its own crash windows -- the final
#              fingerprint must match the clean run, with no torn temp
#              file at any point.  A plan/no-plan mismatch across a
#              checkpoint must be REFUSED (exit 2) in both directions.
#              Every chaotic run's "failpoints ... specs_fired=X/Y" line
#              is checked for X == Y, so a plan that never bites cannot
#              pass as tested.
#
# Usage: tools/fault_soak.sh <path-to-nbsim> [faults|resume|chaos|all]
set -u

nbsim="${1:?usage: fault_soak.sh <path-to-nbsim> [faults|resume|chaos|all]}"
mode="${2:-all}"
timeout_s=120
failures=0

run_faults() {
  local plans=(
    'crash:1@200'
    'sleepy:0@100-400;sleepy:1@150-450'
    'stuck:2@50-90'
    'babble:3@0-500:0.3'
    'deaf:0@0-*'
    'crash:1@300;babble:2@0-200:0.5;deaf:3@0-*'
  )
  for seed in 1 2 3; do
    for plan in "${plans[@]}"; do
      for sim in repetition rewind hierarchical; do
        local cmd=("$nbsim" --task=input_set --channel=correlated --eps=0.05
                   --sim="$sim" --n=8 --trials=3 --seed="$seed"
                   --fault-plan="$plan" --fault-seed="$seed")
        timeout "$timeout_s" "${cmd[@]}" > /dev/null
        local rc=$?
        if [ "$rc" -gt 1 ]; then
          echo "FAULT-SOAK FAILURE (rc=$rc): ${cmd[*]}"
          failures=$((failures + 1))
        fi
      done
    done
  done
}

# Prints the "fingerprint" field of an nbsim human-format run.
fingerprint_of() {
  awk '/^  fingerprint / { print $2 }'
}

# One kill-and-resume round trip.  Arguments: a label followed by the
# workload's nbsim flags.  Clean run at 1 worker; interrupted run at 2
# workers; resume at 4 workers -- the fingerprints must all agree.
check_resume() {
  local label="$1"; shift
  local ckpt
  ckpt="$(mktemp -t nbsoak.XXXXXX.nbckpt)"
  rm -f "$ckpt"  # nbsim must see a fresh path, not an empty file

  local clean interrupted resumed rc
  clean="$(timeout "$timeout_s" "$nbsim" "$@" --workers=1 \
             | fingerprint_of)"
  if [ -z "$clean" ]; then
    echo "RESUME-SOAK FAILURE ($label): clean run produced no fingerprint"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi

  timeout "$timeout_s" "$nbsim" "$@" --workers=2 \
      --checkpoint="$ckpt" --checkpoint-every=2 --halt-after=1 > /dev/null
  rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "RESUME-SOAK FAILURE ($label): expected interrupt exit 3, got $rc"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  if [ ! -s "$ckpt" ]; then
    echo "RESUME-SOAK FAILURE ($label): interrupt left no checkpoint"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  if [ -e "$ckpt.tmp" ]; then
    echo "RESUME-SOAK FAILURE ($label): torn temp file $ckpt.tmp left behind"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi

  resumed="$(timeout "$timeout_s" "$nbsim" "$@" --workers=4 \
               --checkpoint="$ckpt" --checkpoint-every=2 | fingerprint_of)"
  if [ "$resumed" != "$clean" ]; then
    echo "RESUME-SOAK FAILURE ($label): resumed fingerprint $resumed" \
         "diverges from uninterrupted $clean"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  echo "resume soak: $label fingerprint $clean reproduced"
  rm -f "$ckpt" "$ckpt.tmp"
}

# Prints "X Y" from a run's "failpoints ... specs_fired=X/Y" line.
specs_fired_of() {
  awk '/^  failpoints / {
    for (i = 1; i <= NF; i++) {
      if ($i ~ /^specs_fired=/) {
        split(substr($i, 13), parts, "/");
        print parts[1], parts[2];
      }
    }
  }'
}

# The fixed chaos workload; chaos_clean is its uninterrupted fingerprint.
chaos_base=(--task=input_set --channel=correlated --eps=0.05
            --sim=repetition --n=8 --trials=9 --seed=21)
chaos_clean=""

# Asserts every spec of the plan fired.  Arguments: label, run output.
check_chaos_coverage() {
  local label="$1" out="$2" fired total
  read -r fired total <<< "$(printf '%s\n' "$out" | specs_fired_of)"
  if [ -z "${fired:-}" ] || [ "$fired" != "$total" ]; then
    echo "CHAOS-SOAK FAILURE ($label): failpoint coverage" \
         "${fired:-?}/${total:-?} -- some specs never fired (vacuous plan)"
    failures=$((failures + 1)); return 1
  fi
  return 0
}

# Degrade plan: stage 1 runs UNDER the plan with a halt-after so a
# checkpoint (stamped with the plan's config hash) may land mid-sweep.
# Plans that starve checkpointing simply complete in stage 1; otherwise
# stage 2 resumes under the IDENTICAL plan.  Either way the workload must
# end gracefully with the clean fingerprint -- quarantine and recompute,
# never a wrong result or an abort -- and full failpoint coverage.
check_chaos_degrade() {
  local label="$1" plan="$2"
  local ckpt out fp rc
  ckpt="$(mktemp -t nbchaos.XXXXXX.nbckpt)"
  rm -f "$ckpt"

  out="$(timeout "$timeout_s" "$nbsim" "${chaos_base[@]}" --workers=2 \
           --checkpoint="$ckpt" --checkpoint-every=3 --halt-after=1 \
           --fail-plan="$plan" --fail-seed=7)"
  rc=$?
  if [ "$rc" -eq 3 ]; then
    # Halted at a plan-stamped checkpoint; resume under the same plan.
    out="$(timeout "$timeout_s" "$nbsim" "${chaos_base[@]}" --workers=4 \
             --checkpoint="$ckpt" --checkpoint-every=3 \
             --fail-plan="$plan" --fail-seed=7)"
    rc=$?
  fi
  if [ "$rc" -gt 1 ]; then
    echo "CHAOS-SOAK FAILURE ($label): expected graceful completion," \
         "got exit $rc"
    failures=$((failures + 1))
    rm -f "$ckpt" "$ckpt.tmp" "$ckpt.corrupt"; return
  fi
  fp="$(printf '%s\n' "$out" | fingerprint_of)"
  if [ "$fp" != "$chaos_clean" ]; then
    echo "CHAOS-SOAK FAILURE ($label): degraded fingerprint $fp" \
         "diverges from clean $chaos_clean"
    failures=$((failures + 1))
    rm -f "$ckpt" "$ckpt.tmp" "$ckpt.corrupt"; return
  fi
  check_chaos_coverage "$label" "$out" || {
    rm -f "$ckpt" "$ckpt.tmp" "$ckpt.corrupt"; return;
  }
  if [ -e "$ckpt.tmp" ]; then
    echo "CHAOS-SOAK FAILURE ($label): torn temp file left behind"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp" "$ckpt.corrupt"
    return
  fi
  echo "chaos soak: $label degraded gracefully, fingerprint reproduced"
  rm -f "$ckpt" "$ckpt.tmp" "$ckpt.corrupt"
}

# Crash plan: the chaotic checkpointed run must die with the injected-kill
# exit code 4 (firing every spec), and because the plan is part of the
# job's identity, the RESUME runs under the same plan -- crashing again at
# the same windows until the shrinking remainder of the sweep outlives
# them.  The final incarnation must complete with the clean fingerprint
# and no torn temp file.
check_chaos_crash() {
  local label="$1" plan="$2"
  local ckpt out fp rc tries
  ckpt="$(mktemp -t nbchaos.XXXXXX.nbckpt)"
  rm -f "$ckpt"

  tries=0
  for tries in $(seq 1 12); do
    out="$(timeout "$timeout_s" "$nbsim" "${chaos_base[@]}" --workers=2 \
             --checkpoint="$ckpt" --checkpoint-every=3 \
             --fail-plan="$plan" --fail-seed=7)"
    rc=$?
    if [ "$rc" -ne 4 ]; then break; fi
    # Every crashing incarnation must have actually fired its specs.
    check_chaos_coverage "$label/incarnation$tries" "$out" || {
      rm -f "$ckpt" "$ckpt.tmp"; return;
    }
  done
  if [ "$tries" -eq 1 ]; then
    echo "CHAOS-SOAK FAILURE ($label): expected injected-crash exit 4" \
         "on the first incarnation, got $rc"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  if [ "$rc" -gt 1 ]; then
    echo "CHAOS-SOAK FAILURE ($label): incarnation $tries expected" \
         "completion or another crash, got exit $rc"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  fp="$(printf '%s\n' "$out" | fingerprint_of)"
  if [ "$fp" != "$chaos_clean" ]; then
    echo "CHAOS-SOAK FAILURE ($label): post-crash fingerprint $fp" \
         "diverges from clean $chaos_clean after $tries incarnation(s)"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  if [ -e "$ckpt.tmp" ]; then
    echo "CHAOS-SOAK FAILURE ($label): torn temp file left after resume"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  echo "chaos soak: $label survived $tries incarnation(s), fingerprint" \
       "reproduced"
  rm -f "$ckpt" "$ckpt.tmp"
}

# The fail plan is config: a checkpoint written under one plan must be
# refused (exit 2, config hash mismatch) by a run under another -- in
# BOTH directions.  Silently resuming across a plan change would splice
# two different computations into one result file.
check_chaos_mismatch() {
  local ckpt rc
  ckpt="$(mktemp -t nbchaos.XXXXXX.nbckpt)"
  rm -f "$ckpt"

  # Clean halt, then a chaotic run tries to steal the checkpoint.
  timeout "$timeout_s" "$nbsim" "${chaos_base[@]}" --workers=2 \
      --checkpoint="$ckpt" --checkpoint-every=3 --halt-after=1 > /dev/null
  rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "CHAOS-SOAK FAILURE (mismatch): staging halt expected 3, got $rc"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  timeout "$timeout_s" "$nbsim" "${chaos_base[@]}" --workers=4 \
      --checkpoint="$ckpt" --checkpoint-every=3 \
      --fail-plan='latency:write@0-*:1' --fail-seed=7 > /dev/null 2>&1
  rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "CHAOS-SOAK FAILURE (mismatch): chaotic resume of a clean" \
         "checkpoint expected refusal exit 2, got $rc"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  rm -f "$ckpt" "$ckpt.tmp"

  # Chaotic halt, then a clean run tries to steal the checkpoint.
  timeout "$timeout_s" "$nbsim" "${chaos_base[@]}" --workers=2 \
      --checkpoint="$ckpt" --checkpoint-every=3 --halt-after=1 \
      --fail-plan='latency:write@0-*:1' --fail-seed=7 > /dev/null
  rc=$?
  if [ "$rc" -ne 3 ]; then
    echo "CHAOS-SOAK FAILURE (mismatch): chaotic halt expected 3, got $rc"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  timeout "$timeout_s" "$nbsim" "${chaos_base[@]}" --workers=4 \
      --checkpoint="$ckpt" --checkpoint-every=3 > /dev/null 2>&1
  rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "CHAOS-SOAK FAILURE (mismatch): clean resume of a chaotic" \
         "checkpoint expected refusal exit 2, got $rc"
    failures=$((failures + 1)); rm -f "$ckpt" "$ckpt.tmp"; return
  fi
  echo "chaos soak: plan/no-plan checkpoint mismatch refused both ways"
  rm -f "$ckpt" "$ckpt.tmp"
}

run_chaos() {
  chaos_clean="$(timeout "$timeout_s" "$nbsim" "${chaos_base[@]}" \
                   --workers=1 | fingerprint_of)"
  if [ -z "$chaos_clean" ]; then
    echo "CHAOS-SOAK FAILURE: clean run produced no fingerprint"
    failures=$((failures + 1)); return
  fi

  check_chaos_degrade "fail-all-writes" 'fail:write@0-*'
  check_chaos_degrade "enospc-short-write" 'enospc:write@1:0.5'
  check_chaos_degrade "rename-rejected" 'fail:rename@0'
  check_chaos_degrade "read-truncated" 'truncate:read@0:0.5'
  check_chaos_degrade "read-corrupted" 'corrupt:read@0:4'
  check_chaos_degrade "read-unreadable" 'fail:read@0'
  check_chaos_degrade "write-latency" 'latency:write@0-*:2'

  check_chaos_crash "crash-at-write" 'crash:write@1'
  check_chaos_crash "torn-write" 'torn:write@1:0.5'
  check_chaos_crash "crash-at-rename" 'crash:rename@1'
  check_chaos_crash "crash-at-sync" 'crash:sync@1'

  check_chaos_mismatch
}

run_resume() {
  check_resume "repetition/correlated" \
      --task=input_set --channel=correlated --eps=0.05 --sim=repetition \
      --n=8 --trials=9 --seed=11
  check_resume "hierarchical/correlated" \
      --task=input_set --channel=correlated --eps=0.05 --sim=hierarchical \
      --n=6 --trials=8 --seed=12
  check_resume "rewind/faulted/retries" \
      --task=input_set --channel=correlated --eps=0.05 --sim=rewind \
      --n=8 --trials=8 --seed=13 --fault-plan='babble:3@0-200:0.3' \
      --fault-seed=13 --max-attempts=2 --trial-round-budget=200000
}

case "$mode" in
  faults) run_faults ;;
  resume) run_resume ;;
  chaos|--chaos) run_chaos ;;
  all) run_faults; run_resume; run_chaos ;;
  *) echo "unknown mode '$mode' (want faults|resume|chaos|all)"; exit 2 ;;
esac

if [ "$failures" -gt 0 ]; then
  echo "fault soak: $failures failing configuration(s)"
  exit 1
fi
echo "fault soak ($mode): all configurations clean"
