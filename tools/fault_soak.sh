#!/usr/bin/env bash
# Seeded fault-soak: drive nbsim over a fixed seed x fault-plan matrix under
# whatever sanitizer the caller built with.  A faulted run may legitimately
# lose (exit 1: success rate <= 50% when parties misbehave), so both 0 and 1
# are accepted; what the soak catches is sanitizer reports (nonzero beyond 1),
# crashes, and hangs (the strict per-run timeout).
#
# Usage: tools/fault_soak.sh <path-to-nbsim>
set -u

nbsim="${1:?usage: fault_soak.sh <path-to-nbsim>}"
timeout_s=120
failures=0

plans=(
  'crash:1@200'
  'sleepy:0@100-400;sleepy:1@150-450'
  'stuck:2@50-90'
  'babble:3@0-500:0.3'
  'deaf:0@0-*'
  'crash:1@300;babble:2@0-200:0.5;deaf:3@0-*'
)

for seed in 1 2 3; do
  for plan in "${plans[@]}"; do
    for sim in repetition rewind hierarchical; do
      cmd=("$nbsim" --task=input_set --channel=correlated --eps=0.05
           --sim="$sim" --n=8 --trials=3 --seed="$seed"
           --fault-plan="$plan" --fault-seed="$seed")
      timeout "$timeout_s" "${cmd[@]}" > /dev/null
      rc=$?
      if [ "$rc" -gt 1 ]; then
        echo "FAULT-SOAK FAILURE (rc=$rc): ${cmd[*]}"
        failures=$((failures + 1))
      fi
    done
  done
done

if [ "$failures" -gt 0 ]; then
  echo "fault soak: $failures failing configuration(s)"
  exit 1
fi
echo "fault soak: all configurations clean"
