#!/usr/bin/env bash
# End-to-end soak for nbserved, the Unix-socket trial service -- the
# through-the-real-binary counterpart of tests/service_test.cc and
# tests/service_oracle_test.cc.  Five phases:
#
#   overload -- flood one batch past --max-queue: the excess must be SHED
#               with an explicit queue_full verdict and a positive
#               retry_after_ms, never silently dropped or blocked on.
#   retry    -- resend the shed work plus one duplicate: everything
#               completes, and the duplicate is served from the result
#               cache (cached=1) with the original's exact fingerprint.
#   crash    -- a request carrying a crash fail-plan kills the server
#               mid-job (exit 4) with a plan-stamped checkpoint on disk;
#               restarting over the same --cache-dir and resending the
#               SAME request resumes it, crashing again until the
#               shrinking remainder outlives the plan's windows.  The
#               final fingerprint must equal the same spec's clean
#               fingerprint: I/O chaos may delay an answer, never change
#               one.  No *.tmp may survive anywhere in the cache dir.
#   reboot   -- a fresh server over the surviving cache dir answers the
#               whole original workload bit-identically, all from cache.
#   drain    -- SIGTERM: the server stops accepting, prints its
#               ServiceReport, removes its socket, and exits 0.
#
# Usage: tools/service_soak.sh <path-to-nbserved>
set -u

nbserved="${1:?usage: service_soak.sh <path-to-nbserved>}"
timeout_s=120
failures=0

workdir="$(mktemp -d -t nbsvcsoak.XXXXXX)"
sock="$workdir/nb.sock"
cache="$workdir/cache"
server_log="$workdir/server.log"
server_pid=""

cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2> /dev/null; then
    kill -9 "$server_pid" 2> /dev/null
    wait "$server_pid" 2> /dev/null
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "SERVICE-SOAK FAILURE ($1): $2"
  failures=$((failures + 1))
}

start_server() {
  # An injected crash exits without unlinking the socket; clear any stale
  # file BEFORE spawning so the readiness poll below can only see the new
  # server's bind (polling a stale socket races the restart -- the client
  # would connect into ECONNREFUSED and the crash loop would wait on a
  # server that never exits).
  rm -f "$sock"
  "$nbserved" --socket="$sock" --cache-dir="$cache" --max-queue=2 \
      --checkpoint-every=4 >> "$server_log" 2>&1 &
  server_pid=$!
  local i
  for i in $(seq 1 100); do
    [ -S "$sock" ] && return 0
    if ! kill -0 "$server_pid" 2> /dev/null; then break; fi
    sleep 0.05
  done
  fail "startup" "server never bound $sock (see $server_log)"
  return 1
}

# Waits for the server to exit; the code lands in $server_rc.  Must run
# in the main shell (NOT a command substitution): only the shell that
# spawned the server can wait on it.
server_rc=0
wait_server() {
  wait "$server_pid"
  server_rc=$?
  server_pid=""
}

# Sends stdin as one batch and prints the reply lines.
send_batch() {
  timeout "$timeout_s" "$nbserved" --connect="$sock"
}

# Prints the value of key= in the reply line for the given id, if any.
field_of() {
  local id="$1" key="$2"
  awk -v id="id=$id" -v key="$2" '
    $1 == id {
      for (i = 2; i <= NF; i++) {
        if (index($i, key "=") == 1) print substr($i, length(key) + 2);
      }
    }'
}

spec="task=input_set channel=correlated sim=repetition n=8 eps=0.05 trials=9"

run_overload_and_retry() {
  start_server || return

  # Four distinct jobs into a queue of two: the last two must shed.
  local out
  out="$(send_batch <<EOF
id=j1 $spec seed=1
id=j2 $spec seed=2
id=j3 $spec seed=3
id=j4 $spec seed=4
EOF
)"
  local id status retry
  for id in j1 j2; do
    status="$(printf '%s\n' "$out" | field_of "$id" status)"
    [ "$status" = "ok" ] || fail "overload" "$id expected ok, got '$status'"
  done
  for id in j3 j4; do
    status="$(printf '%s\n' "$out" | field_of "$id" status)"
    if [ "$status" != "shed" ]; then
      fail "overload" "$id expected an explicit shed, got '$status'"
      continue
    fi
    retry="$(printf '%s\n' "$out" | field_of "$id" retry_after_ms)"
    if [ -z "$retry" ] || [ "$retry" -le 0 ]; then
      fail "overload" "$id shed without a positive retry_after_ms"
    fi
  done
  fp_j1="$(printf '%s\n' "$out" | field_of j1 fingerprint)"
  fp_j2="$(printf '%s\n' "$out" | field_of j2 fingerprint)"
  [ -n "$fp_j1" ] || fail "overload" "j1 reply carried no fingerprint"
  echo "service soak: overload shed the excess with retry-after verdicts"

  # The shed work retries clean (a full batch: admission is per-batch, so
  # the duplicate goes in its own connection); the duplicate of j1 is a
  # cache hit with the original's exact fingerprint.
  out="$(send_batch <<EOF
id=j3 $spec seed=3
id=j4 $spec seed=4
EOF
)"
  out="$out
$(printf 'id=j1r %s seed=1\n' "$spec" | send_batch)"
  for id in j3 j4 j1r; do
    status="$(printf '%s\n' "$out" | field_of "$id" status)"
    [ "$status" = "ok" ] || fail "retry" "$id expected ok, got '$status'"
  done
  fp_j3="$(printf '%s\n' "$out" | field_of j3 fingerprint)"
  fp_j4="$(printf '%s\n' "$out" | field_of j4 fingerprint)"
  local cached fp
  cached="$(printf '%s\n' "$out" | field_of j1r cached)"
  fp="$(printf '%s\n' "$out" | field_of j1r fingerprint)"
  [ "$cached" = "1" ] || fail "retry" "duplicate of j1 was not served cached"
  if [ "$fp" != "$fp_j1" ]; then
    fail "retry" "cached fingerprint $fp diverges from original $fp_j1"
  fi
  echo "service soak: shed work retried clean, duplicate served from cache"
}

run_crash() {
  # Same simulation as j2, plus an I/O crash plan: the results may not
  # change, only the server's lifetime.  The plan is part of the job's
  # config hash, so every resume below runs under the same plan.
  local request="id=jc $spec seed=2 fail-plan=crash:write@1 fail-seed=7"
  local out rc crashes=0 tries
  for tries in $(seq 1 12); do
    out="$(printf '%s\n' "$request" | send_batch)"
    if [ -n "$(printf '%s\n' "$out" | field_of jc status)" ]; then
      break
    fi
    # No reply: the injected crash killed the server mid-job (exit 4).
    wait_server
    if [ "$server_rc" -ne 4 ]; then
      fail "crash" "server died with exit $server_rc, want injected-crash 4"
      return
    fi
    crashes=$((crashes + 1))
    start_server || return
  done
  if [ "$crashes" -eq 0 ]; then
    fail "crash" "the crash plan never fired -- vacuous chaos"
    return
  fi
  local status fp
  status="$(printf '%s\n' "$out" | field_of jc status)"
  [ "$status" = "ok" ] || {
    fail "crash" "after $crashes crash(es) expected ok, got '$status'"
    return
  }
  fp="$(printf '%s\n' "$out" | field_of jc fingerprint)"
  if [ "$fp" != "$fp_j2" ]; then
    fail "crash" "post-crash fingerprint $fp diverges from clean $fp_j2"
    return
  fi
  if find "$cache" -name '*.tmp' | grep -q .; then
    fail "crash" "torn temp file(s) left in the cache dir"
    return
  fi
  echo "service soak: survived $crashes injected crash(es)," \
       "fingerprint reproduced, no torn files"
}

run_reboot() {
  # kill -9 (the real one), then a fresh server over the surviving cache
  # must answer the ENTIRE original workload from cache, bit-identically.
  kill -9 "$server_pid" 2> /dev/null
  wait "$server_pid" 2> /dev/null
  server_pid=""
  start_server || return

  local out id fp cached
  out="$(send_batch <<EOF
id=j1 $spec seed=1
id=j2 $spec seed=2
EOF
)"
  out="$out
$(send_batch <<EOF
id=j3 $spec seed=3
id=j4 $spec seed=4
EOF
)"
  for id in j1 j2 j3 j4; do
    eval "local want=\$fp_$id"
    fp="$(printf '%s\n' "$out" | field_of "$id" fingerprint)"
    cached="$(printf '%s\n' "$out" | field_of "$id" cached)"
    if [ "$fp" != "$want" ]; then
      fail "reboot" "$id fingerprint $fp diverges from original $want"
    fi
    [ "$cached" = "1" ] || fail "reboot" "$id was recomputed, not cached"
  done
  echo "service soak: rebooted server answered the workload from cache"
}

run_drain() {
  kill -TERM "$server_pid"
  wait_server
  [ "$server_rc" -eq 0 ] || fail "drain" "SIGTERM drain exited $server_rc, want 0"
  [ ! -e "$sock" ] || fail "drain" "drained server left its socket behind"
  grep -q "drained:" "$server_log" ||
      fail "drain" "no ServiceReport printed on drain"
  echo "service soak: SIGTERM drained cleanly with a final report"
}

run_overload_and_retry
if [ "$failures" -eq 0 ]; then run_crash; fi
if [ "$failures" -eq 0 ]; then run_reboot; fi
if [ "$failures" -eq 0 ]; then run_drain; fi

if [ "$failures" -gt 0 ]; then
  echo "service soak: $failures failing phase(s)"
  sed -e 's/^/  server log: /' "$server_log"
  exit 1
fi
echo "service soak: all phases clean"
