// nbserved: a thin Unix-socket front-end over the trial service core.
//
// Server:
//   nbserved --socket=/tmp/nb.sock --cache-dir=/tmp/nbcache
//            [--max-queue N] [--workers W] [--checkpoint-every K]
//            [--cost-hint-ms C] [--retry-after-ms R] [--max-connections M]
//
// Client (reads request lines from stdin, prints reply lines):
//   nbserved --connect=/tmp/nb.sock < requests.txt
//
// The protocol is line-delimited key=value text (src/service/protocol.h);
// one connection carries a BATCH: the client writes its request lines,
// shuts down the write side, and reads one reply line per request, in
// request order.  Every robustness decision -- admission, shedding,
// deadlines, caching, quarantine, cancellation -- lives in
// service::TrialService; this file only moves bytes and signals, and it
// is the ONLY place in the tree allowed to touch raw socket calls (the
// nblint `service-layering` rule holds src/ to that).
//
// Overload behaves like the core: requests beyond --max-queue are shed
// with an explicit retry_after_ms verdict, never silently dropped.
//
// Shutdown: SIGTERM/SIGINT begin a graceful drain -- stop accepting,
// finish and checkpoint in-flight work, print the ServiceReport to
// stderr, exit 0.  kill -9 is the crash-consistency case: the result
// cache is atomic + checksummed, so a restarted nbserved over the same
// --cache-dir serves bit-identical replies (tools/service_soak.sh proves
// it).  An injected crash from a request's fail plan exits 4, like nbsim.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "failpoint/fs.h"
#include "service/protocol.h"
#include "service/service.h"
#include "util/flags.h"

namespace {

using namespace noisybeeps;

volatile std::sig_atomic_t g_drain = 0;

void OnDrainSignal(int) { g_drain = 1; }

// Installed WITHOUT SA_RESTART so a signal interrupts accept() with EINTR
// and the loop notices g_drain.
void InstallDrainHandlers() {
  struct sigaction action {};
  action.sa_handler = OnDrainSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

int Fail(const std::string& message) {
  std::cerr << "nbserved: " << message << "\n";
  return 2;
}

// Reads until EOF (the client shut down its write side), splitting lines.
std::vector<std::string> ReadLines(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t got = read(fd, chunk, sizeof chunk);
    if (got > 0) {
      buffer.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    break;
  }
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < buffer.size()) {
    std::size_t end = buffer.find('\n', start);
    if (end == std::string::npos) end = buffer.size();
    if (end > start) lines.push_back(buffer.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool WriteAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote = write(fd, bytes.data() + sent, bytes.size() - sent);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

// One connection = one batch: parse every line, Submit each (shed and
// error verdicts reply immediately), run the admitted jobs in admission
// order, then write the replies back in REQUEST order.
void ServeConnection(int fd, service::TrialService& svc) {
  const std::vector<std::string> lines = ReadLines(fd);
  std::vector<std::optional<service::Reply>> replies(lines.size());
  std::vector<std::size_t> queued;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    try {
      const service::Request request = service::ParseRequestLine(lines[i]);
      replies[i] = svc.Submit(request);
      if (!replies[i].has_value()) queued.push_back(i);
    } catch (const std::invalid_argument& error) {
      service::Reply reply;
      reply.id = "unknown";
      reply.status = service::ReplyStatus::kError;
      reply.error = error.what();
      replies[i] = reply;
    }
  }
  const std::vector<service::Reply> ran = svc.RunQueued();
  for (std::size_t i = 0; i < ran.size() && i < queued.size(); ++i) {
    replies[queued[i]] = ran[i];
  }
  std::string out;
  for (const std::optional<service::Reply>& reply : replies) {
    if (reply.has_value()) {
      out += service::FormatReplyLine(*reply);
      out += "\n";
    }
  }
  (void)WriteAll(fd, out);
}

int RunServer(Flags& flags) {
  const std::string socket_path = flags.GetString("socket", "");
  const std::string cache_dir = flags.GetString("cache-dir", "");

  service::ServiceOptions options;
  options.cache_dir = cache_dir;
  options.max_queue = static_cast<int>(flags.GetInt("max-queue", 8));
  options.num_workers = static_cast<int>(flags.GetInt("workers", 1));
  options.checkpoint_every =
      static_cast<int>(flags.GetInt("checkpoint-every", 4));
  options.job_cost_hint_millis = flags.GetInt("cost-hint-ms", 200);
  options.retry_after_base_millis = flags.GetInt("retry-after-ms", 25);
  // 0 = serve until signalled.
  const std::int64_t max_connections = flags.GetInt("max-connections", 0);
  for (const std::string& unknown : flags.UnconsumedFlags()) {
    return Fail("unknown flag: --" + unknown + " (try --help)");
  }
  if (socket_path.empty()) return Fail("--socket is required");
  if (cache_dir.empty()) return Fail("--cache-dir is required");

  // Directory creation is a front-end concern, outside the Fs seam.
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  if (ec) return Fail("cannot create --cache-dir: " + ec.message());

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    return Fail("--socket path too long for AF_UNIX");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int listener = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) return Fail("socket(): " + std::string(strerror(errno)));
  unlink(socket_path.c_str());  // stale socket from a previous kill -9
  if (bind(listener, reinterpret_cast<const sockaddr*>(&addr),
           sizeof addr) != 0) {
    close(listener);
    return Fail("bind(" + socket_path + "): " + std::string(strerror(errno)));
  }
  if (listen(listener, 16) != 0) {
    close(listener);
    return Fail("listen(): " + std::string(strerror(errno)));
  }

  InstallDrainHandlers();
  service::TrialService svc(options);
  std::cerr << "nbserved: listening on " << socket_path << "\n";

  std::int64_t served = 0;
  int exit_code = 0;
  try {
    while (g_drain == 0 &&
           (max_connections == 0 || served < max_connections)) {
      const int fd = accept(listener, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;  // loop re-checks g_drain
        exit_code = 1;
        std::cerr << "nbserved: accept(): " << strerror(errno) << "\n";
        break;
      }
      ServeConnection(fd, svc);
      close(fd);
      ++served;
    }
  } catch (const failpoint::InjectedCrash& e) {
    // A request's fail plan killed the "machine".  Die like nbsim does;
    // the cache directory is crash-consistent by construction.
    close(listener);
    std::cerr << "nbserved: killed by failpoint: " << e.what() << "\n";
    return 4;
  }

  // Graceful drain: no new admissions, in-flight work already finished
  // (a batch connection runs its queue before the next accept).
  svc.BeginDrain();
  close(listener);
  unlink(socket_path.c_str());
  std::cerr << "nbserved: drained: " << FormatServiceReport(svc.report())
            << "\n";
  return exit_code;
}

int RunClient(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    return Fail("--connect path too long for AF_UNIX");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Fail("socket(): " + std::string(strerror(errno)));
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    close(fd);
    return Fail("connect(" + socket_path +
                "): " + std::string(strerror(errno)));
  }

  std::string request_bytes;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    request_bytes += line;
    request_bytes += "\n";
  }
  if (!WriteAll(fd, request_bytes)) {
    close(fd);
    return Fail("write(): " + std::string(strerror(errno)));
  }
  shutdown(fd, SHUT_WR);  // EOF marks the end of the batch

  for (const std::string& reply : ReadLines(fd)) {
    std::cout << reply << "\n";
  }
  close(fd);
  return 0;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::puts(
        "nbserved --socket=PATH --cache-dir=DIR [--max-queue N]\n"
        "         [--workers W] [--checkpoint-every K] [--cost-hint-ms C]\n"
        "         [--retry-after-ms R] [--max-connections M]\n"
        "nbserved --connect=PATH   (client: request lines on stdin)\n"
        "protocol: one 'key=value ...' request per line (id= required);\n"
        "  fields mirror nbsim flags (task= channel= sim= n= eps= trials=\n"
        "  seed= fault-plan= fault-seed= fail-plan= fail-seed=\n"
        "  max-attempts= retry-backoff-ms= trial-round-budget=\n"
        "  trial-timeout-ms= deadline-ms=); see docs/SERVICE.md.\n"
        "SIGTERM drains gracefully (exit 0); kill -9 at any point leaves a\n"
        "consistent cache a restart serves bit-identically; exit 4 = an\n"
        "injected crash from a request's fail plan");
    return 0;
  }
  const std::string connect_path = flags.GetString("connect", "");
  if (!connect_path.empty()) {
    for (const std::string& unknown : flags.UnconsumedFlags()) {
      return Fail("unknown flag: --" + unknown + " (try --help)");
    }
    return RunClient(connect_path);
  }
  return RunServer(flags);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "nbserved: " << e.what() << "\n";
    return 2;
  }
}
