// nblint: the project's custom static checker (see src/lint/lint.h for the
// rule set and rationale).  Registered as a ctest so every build gates on
// the repo linting clean.
//
// Usage:
//   nblint --root=/path/to/repo          text findings, exit 1 if any
//   nblint --root=/path/to/repo --json   machine-readable findings
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "util/flags.h"

namespace {

namespace fs = std::filesystem;
using noisybeeps::lint::Finding;
using noisybeeps::lint::SourceFile;

bool IsLintableSource(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::vector<SourceFile> LoadTree(const fs::path& root) {
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "tools", "tests", "examples", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && IsLintableSource(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "nblint: cannot read " << path << "\n";
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    files.push_back(SourceFile{
        fs::relative(path, root).generic_string(), content.str()});
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    noisybeeps::Flags flags(argc, argv);
    const std::string root = flags.GetString("root", ".");
    const bool json = flags.GetBool("json", false);
    for (const std::string& unknown : flags.UnconsumedFlags()) {
      std::cerr << "nblint: unknown flag --" << unknown << "\n";
      return 2;
    }

    const std::vector<SourceFile> files = LoadTree(fs::path(root));
    if (files.empty()) {
      std::cerr << "nblint: no sources found under " << root << "\n";
      return 2;
    }
    const std::vector<Finding> findings =
        noisybeeps::lint::RunAllChecks(files);
    if (json) {
      std::cout << noisybeeps::lint::FormatJson(findings);
    } else {
      std::cout << noisybeeps::lint::FormatText(findings);
      std::cout << "nblint: " << files.size() << " files, "
                << findings.size() << " finding(s)\n";
    }
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "nblint: " << e.what() << "\n";
    return 2;
  }
}
