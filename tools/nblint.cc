// nblint: the project's custom static checker (see src/lint/lint.h for the
// engine and src/lint/rules.cc for the rule registry).  Registered as a
// ctest so every build gates on the repo linting clean.
//
// Usage:
//   nblint --root=/path/to/repo          text findings
//   nblint --root=/path/to/repo --json   machine-readable findings
//   nblint --root=/path/to/repo --sarif  SARIF 2.1.0 (CI code-scanning)
//   nblint --list-rules                  the rule registry, one per line
//
// Exit status: 0 when no error-severity findings remain (warnings do not
// fail the build), 1 when at least one error fires, 2 on usage/IO errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "util/flags.h"

namespace {

namespace fs = std::filesystem;
using noisybeeps::lint::Finding;
using noisybeeps::lint::Severity;
using noisybeeps::lint::SourceFile;

bool IsLintableSource(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::vector<SourceFile> LoadTree(const fs::path& root) {
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "tools", "tests", "examples", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && IsLintableSource(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "nblint: cannot read " << path << "\n";
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    files.push_back(SourceFile{
        fs::relative(path, root).generic_string(), content.str()});
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    noisybeeps::Flags flags(argc, argv);
    const std::string root = flags.GetString("root", ".");
    const bool json = flags.GetBool("json", false);
    const bool sarif = flags.GetBool("sarif", false);
    const bool list_rules = flags.GetBool("list-rules", false);
    for (const std::string& unknown : flags.UnconsumedFlags()) {
      std::cerr << "nblint: unknown flag --" << unknown << "\n";
      return 2;
    }
    if (json && sarif) {
      std::cerr << "nblint: --json and --sarif are mutually exclusive\n";
      return 2;
    }
    if (list_rules) {
      for (const noisybeeps::lint::Rule& rule :
           noisybeeps::lint::AllRules()) {
        std::cout << rule.id << " [" << SeverityName(rule.severity) << ", "
                  << rule.category << "] " << rule.summary << "\n";
      }
      return 0;
    }

    const std::vector<SourceFile> files = LoadTree(fs::path(root));
    if (files.empty()) {
      std::cerr << "nblint: no sources found under " << root << "\n";
      return 2;
    }
    const std::vector<Finding> findings =
        noisybeeps::lint::RunAllChecks(files);
    std::size_t errors = 0;
    for (const Finding& f : findings) {
      if (f.severity == Severity::kError) ++errors;
    }
    if (json) {
      std::cout << noisybeeps::lint::FormatJson(findings);
    } else if (sarif) {
      std::cout << noisybeeps::lint::FormatSarif(findings);
      std::cerr << "nblint: " << files.size() << " files, "
                << findings.size() << " finding(s), " << errors
                << " error(s)\n";
    } else {
      std::cout << noisybeeps::lint::FormatText(findings);
      std::cout << "nblint: " << files.size() << " files, "
                << findings.size() << " finding(s), " << errors
                << " error(s)\n";
    }
    return errors == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "nblint: " << e.what() << "\n";
    return 2;
  }
}
