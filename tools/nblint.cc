// nblint: the project's custom static checker (see src/lint/lint.h for the
// engine and src/lint/rules.cc for the rule registry).  Registered as a
// ctest so every build gates on the repo linting clean.
//
// Usage:
//   nblint --root=/path/to/repo            text findings (per-file rules)
//   nblint --root=. --whole-program        + call-graph rules (taint.h)
//   nblint --root=. --cache=build/nblint.cache
//                                          whole-program, incremental
//   nblint --root=. --json | --sarif       machine-readable findings
//   nblint --root=. --baseline=tools/nblint_baseline.json
//                                          fail on NEW warn findings only
//   nblint --root=. --write-baseline=tools/nblint_baseline.json
//                                          refresh the baseline
//   nblint --list-rules                    the rule registry, one per line
//   nblint --explain=<rule-id>             id, severity, category,
//                                          rationale, suppression example
//
// Exit status: 0 when no error-severity findings remain (warnings do not
// fail the build) and, with --baseline, no unbaselined warn findings
// appear; 1 otherwise; 2 on usage/IO errors.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "util/flags.h"

namespace {

namespace fs = std::filesystem;
using noisybeeps::lint::Finding;
using noisybeeps::lint::Rule;
using noisybeeps::lint::Severity;
using noisybeeps::lint::SourceFile;

bool IsLintableSource(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::vector<SourceFile> LoadTree(const fs::path& root) {
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "tools", "tests", "examples", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && IsLintableSource(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "nblint: cannot read " << path << "\n";
      continue;
    }
    std::ostringstream content;
    content << in.rdbuf();
    files.push_back(SourceFile{
        fs::relative(path, root).generic_string(), content.str()});
  }
  return files;
}

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

bool WriteFile(const fs::path& path, const std::string& content) {
  if (path.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int Explain(const std::string& rule_id) {
  const Rule* rule = noisybeeps::lint::FindRule(rule_id);
  if (rule == nullptr) {
    std::cerr << "nblint: unknown rule '" << rule_id
              << "' (try --list-rules)\n";
    return 2;
  }
  std::cout << rule->id << "\n"
            << "  severity: " << SeverityName(rule->severity) << "\n"
            << "  category: " << rule->category << "\n"
            << "  mode:     "
            << (rule->run_program != nullptr ? "whole-program" : "per-file")
            << "\n"
            << "  summary:  " << rule->summary << "\n";
  if (!rule->rationale.empty()) {
    std::cout << "  rationale: " << rule->rationale << "\n";
  }
  std::cout << "  suppress: offending code;  // NBLINT(" << rule->id
            << "): <why this one site is acceptable>\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    noisybeeps::Flags flags(argc, argv);
    const std::string root = flags.GetString("root", ".");
    const bool json = flags.GetBool("json", false);
    const bool sarif = flags.GetBool("sarif", false);
    const bool list_rules = flags.GetBool("list-rules", false);
    const std::string explain = flags.GetString("explain", "");
    const std::string cache_path = flags.GetString("cache", "");
    const bool whole_program =
        flags.GetBool("whole-program", false) || !cache_path.empty();
    const std::string baseline_path = flags.GetString("baseline", "");
    const std::string write_baseline = flags.GetString("write-baseline", "");
    for (const std::string& unknown : flags.UnconsumedFlags()) {
      std::cerr << "nblint: unknown flag --" << unknown << "\n";
      return 2;
    }
    if (json && sarif) {
      std::cerr << "nblint: --json and --sarif are mutually exclusive\n";
      return 2;
    }
    if (list_rules) {
      for (const Rule& rule : noisybeeps::lint::AllRules()) {
        std::cout << rule.id << " [" << SeverityName(rule.severity) << ", "
                  << rule.category
                  << (rule.run_program != nullptr ? ", whole-program" : "")
                  << "] " << rule.summary << "\n";
      }
      return 0;
    }
    if (!explain.empty()) return Explain(explain);

    const std::vector<SourceFile> files = LoadTree(fs::path(root));
    if (files.empty()) {
      std::cerr << "nblint: no sources found under " << root << "\n";
      return 2;
    }

    noisybeeps::lint::LintOptions options;
    options.whole_program = whole_program;
    noisybeeps::lint::LintStats stats;
    options.stats = &stats;
    std::string cache_out;
    if (!cache_path.empty()) {
      options.cache_in = ReadFileOrEmpty(cache_path);
      options.cache_out = &cache_out;
    }

    const auto started = std::chrono::steady_clock::now();
    const std::vector<Finding> findings =
        noisybeeps::lint::RunAllChecks(files, options);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count();

    if (!cache_path.empty() && !WriteFile(cache_path, cache_out)) {
      std::cerr << "nblint: cannot write cache " << cache_path << "\n";
      return 2;
    }
    if (!write_baseline.empty() &&
        !WriteFile(write_baseline,
                   noisybeeps::lint::FormatBaseline(findings))) {
      std::cerr << "nblint: cannot write baseline " << write_baseline
                << "\n";
      return 2;
    }

    std::size_t errors = 0;
    for (const Finding& f : findings) {
      if (f.severity == Severity::kError) ++errors;
    }
    std::vector<Finding> fresh;
    if (!baseline_path.empty()) {
      fresh = NewFindings(findings,
                          noisybeeps::lint::ParseBaseline(
                              ReadFileOrEmpty(baseline_path)));
    }

    if (json) {
      std::cout << noisybeeps::lint::FormatJson(findings);
    } else if (sarif) {
      std::cout << noisybeeps::lint::FormatSarif(findings);
    } else {
      std::cout << noisybeeps::lint::FormatText(findings);
    }
    std::ostream& log = (json || sarif) ? std::cerr : std::cout;
    log << "nblint: " << files.size() << " files, " << findings.size()
        << " finding(s), " << errors << " error(s)";
    if (whole_program) {
      log << "; whole-program: " << stats.nodes << " nodes, " << stats.edges
          << " edges (" << stats.resolved_edges << " resolved), cache "
          << stats.cache_hits << "/" << stats.files << " hits, "
          << elapsed_ms << " ms";
    }
    log << "\n";
    if (!fresh.empty()) {
      std::cerr << "nblint: " << fresh.size()
                << " warn finding(s) not in baseline " << baseline_path
                << " (fix them or refresh with --write-baseline):\n"
                << noisybeeps::lint::FormatText(fresh);
    }
    return errors == 0 && fresh.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "nblint: " << e.what() << "\n";
    return 2;
  }
}
