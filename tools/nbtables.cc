// nbtables: regenerates the headline tables of EXPERIMENTS.md as markdown.
//
// Where the bench/ binaries expose each experiment as google-benchmark
// counters, this tool runs the four headline sweeps (E1 upper bound, E2
// lower bound, E3 asymmetry, E10 burst robustness) end to end and prints
// ready-to-paste markdown, so the documented numbers are regenerable with
// one command:
//
//   nbtables [--trials K] [--seed S] [--fast]
#include <cstdio>

#include "channel/burst.h"
#include "channel/correlated.h"
#include "channel/one_sided.h"
#include "coding/rewind_sim.h"
#include "protocol/executor.h"
#include "tasks/bit_exchange.h"
#include "tasks/input_set.h"
#include "util/flags.h"
#include "util/math.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace noisybeeps;

struct Cell {
  double blowup = 0;
  double success = 0;
};

struct TrialOutcome {
  bool ok = false;
  double blowup = 0;
};

Cell Aggregate(const std::vector<TrialOutcome>& outcomes) {
  SuccessCounter counter;
  RunningStat blowup;
  for (const TrialOutcome& o : outcomes) {
    counter.Record(o.ok);
    blowup.Add(o.blowup);
  }
  return Cell{blowup.mean(), counter.rate()};
}

// Trials are fanned out with ParallelTrials: per-trial Rngs are split
// deterministically up front, so the numbers are identical for any worker
// count.  `workers = 1` forces serial execution, required for channels
// that carry hidden state (the burst channel's Markov chain).
Cell MeasureInputSet(const Simulator& sim, const Channel& channel, int n,
                     int trials, Rng& rng, int workers = 0) {
  const auto body =
      [&sim, &channel, n](int, Rng& trial_rng) {
        const InputSetInstance instance = SampleInputSet(n, trial_rng);
        const auto protocol = MakeInputSetProtocol(instance);
        const SimulationResult result =
            sim.Simulate(*protocol, channel, trial_rng);
        return TrialOutcome{!result.budget_exhausted() &&
                                InputSetAllCorrect(instance, result.outputs),
                            static_cast<double>(result.noisy_rounds_used) /
                                protocol->length()};
      };
  return Aggregate(ParallelTrials(trials, rng, body, workers));
}

Cell MeasureBitExchange(const Simulator& sim, const Channel& channel, int n,
                        int trials, Rng& rng, int workers = 0) {
  const auto body =
      [&sim, &channel, n](int, Rng& trial_rng) {
        const BitExchangeInstance instance =
            SampleBitExchange(n, 8, trial_rng);
        const auto protocol = MakeBitExchangeProtocol(instance);
        const SimulationResult result =
            sim.Simulate(*protocol, channel, trial_rng);
        return TrialOutcome{
            !result.budget_exhausted() &&
                BitExchangeAllCorrect(instance, result.outputs),
            static_cast<double>(result.noisy_rounds_used) /
                protocol->length()};
      };
  return Aggregate(ParallelTrials(trials, rng, body, workers));
}

double LogN(int n) {
  return CeilLog2(static_cast<std::uint64_t>(n < 2 ? 2 : n));
}

void TableE1(int trials, std::uint64_t seed, bool fast) {
  std::printf("## E1 -- Theorem 1.2: O(log n) overhead (rewind, eps=0.05)\n\n");
  std::printf("| n | blowup | blowup/log2(n) | success |\n|---|---|---|---|\n");
  const CorrelatedNoisyChannel channel(0.05);
  const RewindSimulator sim;
  for (int n : {8, 16, 32, 64, fast ? 64 : 128}) {
    if (n == 64 && fast) continue;
    Rng rng(seed + 1000 + n);
    const Cell cell = MeasureInputSet(sim, channel, n, trials, rng);
    std::printf("| %d | %.1f | %.1f | %.0f%% |\n", n, cell.blowup,
                cell.blowup / LogN(n), 100 * cell.success);
  }
  std::printf("\n");
}

void TableE2(int trials, std::uint64_t seed, bool fast) {
  std::printf(
      "## E2 -- Theorem 1.1: minimal repetition r* for 90%% success "
      "(one-sided-up eps=1/3)\n\n");
  std::printf("| n | r* | r*/log2(n) |\n|---|---|---|\n");
  const OneSidedUpChannel channel(1.0 / 3.0);
  for (int n : {4, 8, 16, 32, fast ? 32 : 64}) {
    if (n == 32 && fast) continue;
    Rng rng(seed + 5000 + n);
    int r_star = -1;
    for (int r = 1; r <= 128 && r_star < 0; ++r) {
      SuccessCounter counter;
      for (int t = 0; t < trials; ++t) {
        const InputSetInstance instance = SampleInputSet(n, rng);
        const auto protocol = MakeRepeatedInputSetProtocol(
            instance, r, RoundDecision::kAllOnes);
        const ExecutionResult result = Execute(*protocol, channel, rng);
        counter.Record(InputSetAllCorrect(instance, result.outputs));
      }
      if (counter.rate() >= 0.9) r_star = r;
    }
    std::printf("| %d | %d | %.2f |\n", n, r_star, r_star / LogN(n));
  }
  std::printf("\n");
}

void TableE3(int trials, std::uint64_t seed, bool fast) {
  std::printf(
      "## E3 -- Section 2 asymmetry: blowup by noise direction "
      "(BitExchange, eps=0.10)\n\n");
  std::printf(
      "| n | 1->0 blowup | 0->1 blowup | ratio |\n|---|---|---|---|\n");
  const OneSidedDownChannel down(0.10);
  const OneSidedUpChannel up(0.10);
  const RewindSimulator down_sim(RewindSimOptions::DownOnly());
  const RewindSimulator up_sim;
  for (int n : {8, 16, 32, 64, fast ? 64 : 128}) {
    if (n == 64 && fast) continue;
    Rng rng_a(seed + 7000 + n);
    Rng rng_b(seed + 8000 + n);
    const Cell d = MeasureBitExchange(down_sim, down, n, trials, rng_a);
    const Cell u = MeasureBitExchange(up_sim, up, n, trials, rng_b);
    std::printf("| %d | %.2f | %.1f | %.1fx |\n", n, d.blowup, u.blowup,
                u.blowup / d.blowup);
  }
  std::printf("\n");
}

void TableE11(int trials, std::uint64_t seed, bool fast) {
  std::printf(
      "## E11 -- ownership landscape: scheduled (EKS18 regime) vs anonymous "
      "(BitExchange, two-sided eps=0.05)\n\n");
  std::printf("| n | scheduled | anonymous | gap |\n|---|---|---|---|\n");
  const CorrelatedNoisyChannel channel(0.05);
  for (int n : {8, 16, 32, fast ? 32 : 64}) {
    if (n == 32 && fast) continue;
    Rng rng_a(seed + 11000 + n);
    Rng rng_b(seed + 12000 + n);
    const RewindSimulator scheduled(
        RewindSimOptions::Scheduled(BitExchangeSchedule(n, 8)));
    const RewindSimulator anonymous;
    const Cell s = MeasureBitExchange(scheduled, channel, n, trials, rng_a);
    const Cell a = MeasureBitExchange(anonymous, channel, n, trials, rng_b);
    std::printf("| %d | %.1f | %.1f | %.1fx |\n", n, s.blowup, a.blowup,
                a.blowup / s.blowup);
  }
  std::printf("\n");
}

void TableE10(int trials, std::uint64_t seed) {
  std::printf(
      "## E10 -- burst robustness (n=16, stationary rate 0.05)\n\n");
  std::printf("| mean burst | success | blowup |\n|---|---|---|\n");
  const RewindSimulator sim;
  {
    Rng rng(seed + 9000);
    const CorrelatedNoisyChannel iid(0.05);
    const Cell cell = MeasureInputSet(sim, iid, 16, trials, rng);
    std::printf("| iid control | %.0f%% | %.1f |\n", 100 * cell.success,
                cell.blowup);
  }
  for (int burst : {2, 10, 50}) {
    Rng rng(seed + 9100 + burst);
    const double p_bg = 1.0 / burst;
    const BurstNoisyChannel channel(0.0, 0.4, p_bg / 7.0, p_bg);
    const Cell cell =
        MeasureInputSet(sim, channel, 16, trials, rng, /*workers=*/1);
    std::printf("| %d | %.0f%% | %.1f |\n", burst, 100 * cell.success,
                cell.blowup);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Flags flags(argc, argv);
    const int trials = static_cast<int>(flags.GetInt("trials", 8));
    const std::uint64_t seed =
        static_cast<std::uint64_t>(flags.GetInt("seed", 1));
    const bool fast = flags.GetBool("fast", false);
    for (const std::string& unknown : flags.UnconsumedFlags()) {
      std::fprintf(stderr, "unknown flag: --%s\n", unknown.c_str());
      return 2;
    }
    std::printf("# noisybeeps headline tables (trials=%d, seed=%llu)\n\n",
                trials, static_cast<unsigned long long>(seed));
    TableE1(trials, seed, fast);
    TableE2(trials * 5, seed, fast);  // cheap cells, more trials
    TableE3(trials, seed, fast);
    TableE10(trials, seed);
    TableE11(trials, seed, fast);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nbtables: %s\n", e.what());
    return 2;
  }
}
